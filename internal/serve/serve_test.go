package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/matgen"
)

// newTestServer builds a server with one registered 900-row Poisson
// operator under the handle "m" and drains it at test end.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	srv := New(opts)
	t.Cleanup(srv.Drain)
	srv.RegisterMatrix("m", matgen.Poisson2D(30, 30), 64)
	return srv
}

func fastReq() *Request {
	return &Request{Matrix: "m", Solver: "cg", Precond: true, Tol: 1e-10}
}

// slowReq runs until its deadline: an unreachable tolerance with a huge
// iteration budget, cancelled by the per-request timeout.
func slowReq(timeout time.Duration) *Request {
	return &Request{Matrix: "m", Solver: "cg", Tol: 1e-300, MaxIter: 1 << 30, Timeout: timeout}
}

func TestWarmReuseAndCounters(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1})
	for i := 0; i < 3; i++ {
		resp, err := srv.Submit(fastReq())
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if !resp.Converged {
			t.Fatalf("solve %d did not converge: %+v", i, resp)
		}
		if i == 0 && resp.Warm {
			t.Fatal("first solve claims a warm instance")
		}
		if i > 0 && !resp.Warm {
			t.Fatalf("solve %d did not reuse the pooled instance", i)
		}
	}
	s := srv.Snapshot()
	if s.Completed != 3 || s.WarmSolves != 2 || s.CacheHits != 3 || s.Failed != 0 {
		t.Fatalf("counters completed=%d warm=%d hits=%d failed=%d, want 3/2/3/0", s.Completed, s.WarmSolves, s.CacheHits, s.Failed)
	}
}

func TestUnknownMatrix(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1})
	if _, err := srv.Submit(&Request{Matrix: "nope"}); !errors.Is(err, ErrUnknownMatrix) {
		t.Fatalf("want ErrUnknownMatrix, got %v", err)
	}
}

func TestTimeoutCancelsSolve(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1})
	start := time.Now()
	_, err := srv.Submit(slowReq(100 * time.Millisecond))
	if !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("want core.ErrCancelled, got %v", err)
	}
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("cancellation took %v — deadline not honoured at iteration granularity", e)
	}
	if s := srv.Snapshot(); s.Failed != 1 {
		t.Fatalf("failed=%d, want 1", s.Failed)
	}
}

// waitFor polls a server predicate — admission bookkeeping is internal,
// so tests observe it through Snapshot.
func waitFor(t *testing.T, srv *Server, what string, pred func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pred(srv.Snapshot()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s: %+v", what, srv.Snapshot())
}

func TestQueueFull(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1, QueueDepth: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the only dispatcher until its deadline
		defer wg.Done()
		_, _ = srv.Submit(slowReq(time.Second))
	}()
	waitFor(t, srv, "dispatcher to pick up the slow solve", func(s Stats) bool {
		return s.Accepted == 1 && s.QueueLen == 0
	})
	wg.Add(1)
	go func() { // fills the single queue slot
		defer wg.Done()
		if _, err := srv.Submit(fastReq()); err != nil {
			t.Errorf("queued request failed: %v", err)
		}
	}()
	waitFor(t, srv, "queue slot to fill", func(s Stats) bool { return s.QueueLen == 1 })
	if _, err := srv.Submit(fastReq()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if s := srv.Snapshot(); s.Rejected != 1 {
		t.Fatalf("rejected=%d, want 1", s.Rejected)
	}
	wg.Wait()
}

// TestPriorityDispatchOrder: with one dispatcher busy, a high-priority
// request admitted after a low-priority one must still run first.
func TestPriorityDispatchOrder(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = srv.Submit(slowReq(time.Second))
	}()
	waitFor(t, srv, "dispatcher busy", func(s Stats) bool {
		return s.Accepted == 1 && s.QueueLen == 0
	})

	// The low-priority request burns its whole 300ms budget, the
	// high-priority one solves in milliseconds: if the heap dispatches
	// high first, it returns long before low; if FIFO order leaked
	// through, high returns after low's 300ms.
	var lowDone, highDone time.Time
	wg.Add(2)
	go func() {
		defer wg.Done()
		req := slowReq(300 * time.Millisecond)
		req.Priority = -1
		_, _ = srv.Submit(req)
		lowDone = time.Now()
	}()
	waitFor(t, srv, "low queued", func(s Stats) bool { return s.QueueLen == 1 })
	go func() {
		defer wg.Done()
		req := fastReq()
		req.Priority = 3
		if _, err := srv.Submit(req); err != nil {
			t.Errorf("high: %v", err)
		}
		highDone = time.Now()
	}()
	waitFor(t, srv, "high queued", func(s Stats) bool { return s.QueueLen == 2 })
	wg.Wait()
	if !highDone.Before(lowDone) {
		t.Fatalf("high-priority request finished %v after the low-priority one — dispatch ignored priority", highDone.Sub(lowDone))
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	srv := New(Options{Concurrent: 1})
	srv.RegisterMatrix("m", matgen.Poisson2D(20, 20), 64)
	if _, err := srv.Submit(&Request{Matrix: "m", Tol: 1e-8}); err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	if _, err := srv.Submit(&Request{Matrix: "m"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}
}

// TestStormTenantIsolation runs a DUE-storm tenant concurrently with a
// clean tenant against the same cached operator: the storm's injector
// targets only its own request's fault domain, so the clean solve sees
// zero injections and both converge. Under -race this is the gate for
// concurrent solves sharing one context.
func TestStormTenantIsolation(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 2})
	var wg sync.WaitGroup
	var stormResp, cleanResp *Response
	var stormErr, cleanErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		stormResp, stormErr = srv.Submit(&Request{
			Matrix: "m", Solver: "cg", Method: "afeir", Precond: true,
			Tol: 1e-10, Tenant: "storm", DUEMTBE: 50 * time.Microsecond, Seed: 7,
		})
	}()
	go func() {
		defer wg.Done()
		cleanResp, cleanErr = srv.Submit(&Request{
			Matrix: "m", Solver: "cg", Precond: true, Tol: 1e-10, Tenant: "clean",
		})
	}()
	wg.Wait()
	if stormErr != nil || cleanErr != nil {
		t.Fatalf("storm err=%v clean err=%v", stormErr, cleanErr)
	}
	if !stormResp.Converged || !cleanResp.Converged {
		t.Fatalf("converged: storm=%v clean=%v", stormResp.Converged, cleanResp.Converged)
	}
	if cleanResp.Injected != 0 {
		t.Fatalf("clean tenant saw %d injections — fault domains are not isolated", cleanResp.Injected)
	}
}

func TestWantSolution(t *testing.T) {
	srv := newTestServer(t, Options{Concurrent: 1})
	resp, err := srv.Submit(&Request{Matrix: "m", Precond: true, Tol: 1e-10, WantSolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.X) != 900 {
		t.Fatalf("solution length %d, want 900", len(resp.X))
	}
}
