// Package perfmodel predicts the large-scale behaviour of the resilient CG
// variants (Figure 5: 64–1024 cores on MareNostrum solving a 512³ 27-point
// Poisson system). A laptop cannot host 1024 cores, so the speedup curves
// are regenerated from an analytic model with the paper's cost structure:
//
//   - compute time per iteration scales with 1/P (SpMV + vector kernels),
//   - halo exchange of one 512² plane per neighbour costs latency +
//     bytes/bandwidth and does not shrink with the 1-D slab partition,
//   - two allreduces per iteration cost ~log2(P) network latencies,
//   - FEIR's recovery tasks sit in the critical path: a per-iteration
//     latency that does NOT shrink with P, which is why FEIR falls behind
//     the ideal curve as iterations get shorter (§5.5),
//   - AFEIR overlaps that latency but loses reduction contributions when
//     errors strike, costing extra iterations that compound with the error
//     count (§5.4) — the reason AFEIR drops below FEIR at 2 errors/run,
//   - Lossy Restart pays extra iterations per restart (superlinear
//     convergence lost), Trivial pays much more, and checkpointing pays
//     periodic local-disk writes plus rollback re-execution.
//
// The free constants (effective flops, network parameters, per-method
// latencies and damage factors) are calibrated against this repository's
// single-socket measurements and the paper's reported anchors; they are
// exported so sensitivity studies can vary them.
package perfmodel

import (
	"math"

	"repro/internal/core"
)

// Machine describes the modelled cluster. The defaults approximate a
// MareNostrum III node: 2× 8-core Sandy Bridge sockets, InfiniBand FDR.
type Machine struct {
	CoresPerSocket   int
	FlopsPerCore     float64 // effective (memory-bound) flop rate
	NetLatency       float64 // seconds per message
	NetBandwidth     float64 // bytes/second per link
	DiskBandwidth    float64 // bytes/second of a socket's local scratch disk
	ReduceLatency    float64 // seconds per allreduce hop
	TaskLatencyFEIR  float64 // critical-path recovery-task latency per iteration
	TaskLatencyAFEIR float64 // residual (non-overlapped) latency per iteration
}

// DefaultMachine returns the calibrated machine description.
func DefaultMachine() Machine {
	return Machine{
		CoresPerSocket:   8,
		FlopsPerCore:     2.0e9,
		NetLatency:       2e-6,
		NetBandwidth:     4.0e9,
		DiskBandwidth:    50e6,
		ReduceLatency:    5e-6,
		TaskLatencyFEIR:  3.5e-3,
		TaskLatencyAFEIR: 0.3e-3,
	}
}

// Problem describes the modelled workload: the HPCG-like 27-point stencil.
type Problem struct {
	NX         int     // grid side; N = NX³ unknowns
	NnzPerRow  float64 // 27 for the stencil
	Iterations int     // fault-free iterations to convergence ("a few tens")
}

// DefaultProblem returns the paper's 512³ system.
func DefaultProblem() Problem {
	return Problem{NX: 512, NnzPerRow: 27, Iterations: 40}
}

// DamageModel holds the per-method convergence-damage factors: the extra
// iterations caused by err errors are
//
//	Iterations × (Linear×err + Quadratic×err×(err-1))
//
// Exact forward recovery does essentially no damage; AFEIR's lost
// contributions, Lossy's restarts and Trivial's blank pages do.
type DamageModel struct{ Linear, Quadratic float64 }

// Model combines machine, problem and method parameters.
type Model struct {
	Machine Machine
	Problem Problem
	// Damage maps each method to its convergence-damage model.
	Damage map[core.Method]DamageModel
	// RecoveryCoordinationIters is the pipeline disturbance of one
	// recovery event, in iteration-equivalents (halo refreshes, extra
	// reductions, jitter).
	RecoveryCoordinationIters float64
}

// New returns the calibrated model.
func New() *Model {
	return &Model{
		Machine: DefaultMachine(),
		Problem: DefaultProblem(),
		Damage: map[core.Method]DamageModel{
			core.MethodIdeal:      {},
			core.MethodFEIR:       {Linear: 0.01},
			core.MethodAFEIR:      {Linear: 0.22, Quadratic: 0.16},
			core.MethodLossy:      {Linear: 0.45, Quadratic: 0.23},
			core.MethodTrivial:    {Linear: 2.0, Quadratic: 0.8},
			core.MethodCheckpoint: {},
		},
		RecoveryCoordinationIters: 2,
	}
}

// Sockets converts a core count to sockets (the paper maps one MPI rank
// per 8-core socket).
func (m *Model) Sockets(cores int) int {
	s := cores / m.Machine.CoresPerSocket
	if s < 1 {
		s = 1
	}
	return s
}

// IterTime returns the fault-free per-iteration time on the given number
// of cores.
func (m *Model) IterTime(cores int) float64 {
	p := float64(m.Sockets(cores))
	n := float64(m.Problem.NX) * float64(m.Problem.NX) * float64(m.Problem.NX)
	flops := 2*m.Problem.NnzPerRow*n + 10*n // SpMV + axpy/dot kernels
	socketFlops := float64(m.Machine.CoresPerSocket) * m.Machine.FlopsPerCore
	tComp := flops / p / socketFlops
	// 1-D slab partition: one 512² plane of halo per neighbour, 2 sides.
	plane := float64(m.Problem.NX*m.Problem.NX) * 8
	tHalo := 2 * (m.Machine.NetLatency + plane/m.Machine.NetBandwidth)
	if p == 1 {
		tHalo = 0
	}
	tReduce := 2 * math.Ceil(math.Log2(p)) * m.Machine.ReduceLatency
	return tComp + tHalo + tReduce
}

// RunTime predicts the total execution time of a run with the given
// method, core count and number of errors.
func (m *Model) RunTime(method core.Method, cores, errors int) float64 {
	return m.RunTimeF(method, cores, float64(errors))
}

// RunTimeF is RunTime with a real-valued error count, for controllers that
// feed an estimated (fractional) errors-per-run rate into the model. The
// damage factor is clamped at 1 so the quadratic term cannot predict a
// SPEEDUP for fractional e<1; at integer e it equals RunTime exactly.
func (m *Model) RunTimeF(method core.Method, cores int, e float64) float64 {
	tIter := m.IterTime(cores)
	iters := float64(m.Problem.Iterations)

	// Per-iteration resilience latency.
	switch method {
	case core.MethodFEIR:
		tIter += m.Machine.TaskLatencyFEIR
	case core.MethodAFEIR:
		tIter += m.Machine.TaskLatencyAFEIR
	}

	// Convergence damage in extra iterations.
	dm := m.Damage[method]
	factor := 1 + dm.Linear*e + dm.Quadratic*e*(e-1)
	if factor < 1 {
		factor = 1
	}
	iters *= factor
	// Recovery/restart coordination per error.
	iters += m.RecoveryCoordinationIters * e

	total := iters * tIter

	if method == core.MethodCheckpoint {
		// Per-socket checkpoint bytes: x and d slabs.
		n := float64(m.Problem.NX) * float64(m.Problem.NX) * float64(m.Problem.NX)
		p := float64(m.Sockets(cores))
		ckptTime := 2 * n / p * 8 / m.Machine.DiskBandwidth
		base := float64(m.Problem.Iterations) * tIter
		var interval float64
		if e > 0 {
			mtbe := base / e
			interval = math.Sqrt(2 * ckptTime * mtbe) // Young/Daly
		} else {
			interval = base // one checkpoint
		}
		numCkpts := math.Max(1, base/interval)
		total += numCkpts * ckptTime
		// Per error: read back + re-execute half an interval.
		total += e * (ckptTime + interval/2)
	}
	return total
}

// OptimalCheckpointInterval returns the Young/Daly checkpoint period in
// ITERATIONS for the modelled machine at the given core count and an
// observed error rate (errors per iteration). A rate of 0 or less means
// one checkpoint per expected run (Problem.Iterations).
func (m *Model) OptimalCheckpointInterval(cores int, errsPerIter float64) int {
	if errsPerIter <= 0 {
		return m.Problem.Iterations
	}
	tIter := m.IterTime(cores)
	n := float64(m.Problem.NX) * float64(m.Problem.NX) * float64(m.Problem.NX)
	p := float64(m.Sockets(cores))
	ckptTime := 2 * n / p * 8 / m.Machine.DiskBandwidth
	mtbe := tIter / errsPerIter
	iv := int(math.Round(math.Sqrt(2*ckptTime*mtbe) / tIter))
	if iv < 1 {
		iv = 1
	}
	return iv
}

// Speedup returns the paper's Figure 5 metric: execution time of the ideal
// CG on 64 cores divided by this run's time.
func (m *Model) Speedup(method core.Method, cores, errors int) float64 {
	ref := m.RunTime(core.MethodIdeal, 64, 0)
	return ref / m.RunTime(method, cores, errors)
}

// ParallelEfficiency returns ideal-CG efficiency at the given core count
// relative to 64 cores (the paper reports 80.17 % at 1024).
func (m *Model) ParallelEfficiency(cores int) float64 {
	return m.Speedup(core.MethodIdeal, cores, 0) / (float64(cores) / 64)
}

// Fig5Curve is one method's speedup series.
type Fig5Curve struct {
	Method  core.Method
	Errors  int
	Cores   []int
	Speedup []float64
}

// Fig5Cores is the paper's x-axis.
var Fig5Cores = []int{64, 128, 256, 512, 1024}

// Fig5 produces all curves of Figure 5 (each method at 1 and 2 errors per
// run, plus the ideal and linear references).
func (m *Model) Fig5() []Fig5Curve {
	methods := []core.Method{
		core.MethodAFEIR, core.MethodFEIR, core.MethodLossy,
		core.MethodCheckpoint, core.MethodTrivial,
	}
	var out []Fig5Curve
	for _, errs := range []int{1, 2} {
		for _, meth := range methods {
			c := Fig5Curve{Method: meth, Errors: errs, Cores: Fig5Cores}
			for _, cores := range Fig5Cores {
				c.Speedup = append(c.Speedup, m.Speedup(meth, cores, errs))
			}
			out = append(out, c)
		}
		ideal := Fig5Curve{Method: core.MethodIdeal, Errors: errs, Cores: Fig5Cores}
		for _, cores := range Fig5Cores {
			ideal.Speedup = append(ideal.Speedup, m.Speedup(core.MethodIdeal, cores, 0))
		}
		out = append(out, ideal)
	}
	return out
}
