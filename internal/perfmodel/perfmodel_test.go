package perfmodel

import (
	"testing"

	"repro/internal/core"
)

func TestIdealEfficiencyAt1024(t *testing.T) {
	m := New()
	eff := m.ParallelEfficiency(1024)
	// Paper: 80.17 % parallel efficiency at 1024 cores.
	if eff < 0.70 || eff > 0.92 {
		t.Fatalf("efficiency at 1024 = %.3f, want ~0.80", eff)
	}
}

func TestIdealSpeedupMonotone(t *testing.T) {
	m := New()
	prev := 0.0
	for _, cores := range Fig5Cores {
		s := m.Speedup(core.MethodIdeal, cores, 0)
		if s <= prev {
			t.Fatalf("ideal speedup not monotone at %d cores: %v <= %v", cores, s, prev)
		}
		prev = s
	}
	if s := m.Speedup(core.MethodIdeal, 64, 0); s != 1 {
		t.Fatalf("ideal speedup at 64 cores = %v, want 1", s)
	}
}

func TestFig5OrderingOneError(t *testing.T) {
	// Paper, 1024 cores, 1 error/run: AFEIR 10.01, Lossy 8.17, FEIR 7.50,
	// ckpt and Trivial far below.
	m := New()
	s := func(meth core.Method) float64 { return m.Speedup(meth, 1024, 1) }
	ideal := m.Speedup(core.MethodIdeal, 1024, 0)
	afeir, feir, lossy := s(core.MethodAFEIR), s(core.MethodFEIR), s(core.MethodLossy)
	ckpt, trivial := s(core.MethodCheckpoint), s(core.MethodTrivial)
	if !(afeir > lossy && lossy > feir) {
		t.Fatalf("ordering wrong: AFEIR %.2f, Lossy %.2f, FEIR %.2f", afeir, lossy, feir)
	}
	if ckpt > ideal/3 {
		t.Fatalf("ckpt speedup %.2f should stay below a third of ideal %.2f", ckpt, ideal)
	}
	if trivial > feir {
		t.Fatalf("trivial %.2f should lose to FEIR %.2f", trivial, feir)
	}
	// Rough magnitudes (paper: 10.01 / 8.17 / 7.50).
	if afeir < 8 || afeir > 12.5 {
		t.Fatalf("AFEIR(1024,1) = %.2f, want ~10", afeir)
	}
	if feir < 5.5 || feir > 9.5 {
		t.Fatalf("FEIR(1024,1) = %.2f, want ~7.5", feir)
	}
}

func TestFig5CrossoverTwoErrors(t *testing.T) {
	// Paper, 1024 cores, 2 errors/run: FEIR 7.65 beats AFEIR 6.03 — the
	// conservative method wins when errors are frequent.
	m := New()
	afeir := m.Speedup(core.MethodAFEIR, 1024, 2)
	feir := m.Speedup(core.MethodFEIR, 1024, 2)
	lossy := m.Speedup(core.MethodLossy, 1024, 2)
	if feir <= afeir {
		t.Fatalf("FEIR (%.2f) must beat AFEIR (%.2f) at 2 errors", feir, afeir)
	}
	if lossy >= afeir {
		t.Fatalf("Lossy (%.2f) should fall below AFEIR (%.2f) at 2 errors", lossy, afeir)
	}
	if afeir < 4.5 || afeir > 8 {
		t.Fatalf("AFEIR(1024,2) = %.2f, want ~6", afeir)
	}
}

func TestFEIRPenaltyGrowsWithScale(t *testing.T) {
	// The critical-path latency hurts more as iterations shrink: the
	// FEIR/ideal ratio must fall with core count (§5.5).
	m := New()
	r64 := m.Speedup(core.MethodFEIR, 64, 1) / m.Speedup(core.MethodIdeal, 64, 0)
	r1024 := m.Speedup(core.MethodFEIR, 1024, 1) / m.Speedup(core.MethodIdeal, 1024, 0)
	if r1024 >= r64 {
		t.Fatalf("FEIR relative performance should degrade with scale: %v at 64, %v at 1024", r64, r1024)
	}
}

func TestCheckpointDominatedByIO(t *testing.T) {
	m := New()
	withErr := m.RunTime(core.MethodCheckpoint, 1024, 1)
	ideal := m.RunTime(core.MethodIdeal, 1024, 0)
	if withErr < 2*ideal {
		t.Fatalf("checkpoint run %.3fs should be dominated by I/O vs ideal %.3fs", withErr, ideal)
	}
}

func TestFig5CurvesComplete(t *testing.T) {
	m := New()
	curves := m.Fig5()
	// 5 methods × 2 error counts + 2 ideal references.
	if len(curves) != 12 {
		t.Fatalf("got %d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.Speedup) != len(Fig5Cores) {
			t.Fatalf("curve %v/%d has %d points", c.Method, c.Errors, len(c.Speedup))
		}
		for i, s := range c.Speedup {
			if s <= 0 {
				t.Fatalf("curve %v/%d point %d non-positive", c.Method, c.Errors, i)
			}
		}
	}
}

func TestIterTimeShrinksWithCores(t *testing.T) {
	m := New()
	if m.IterTime(1024) >= m.IterTime(64) {
		t.Fatal("iteration time should shrink with cores")
	}
	if m.Sockets(64) != 8 || m.Sockets(1024) != 128 || m.Sockets(3) != 1 {
		t.Fatal("socket mapping wrong")
	}
}
