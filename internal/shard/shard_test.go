package shard

import (
	"math"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func testSubstrate(t *testing.T, ranks int) *Substrate {
	t.Helper()
	a := matgen.Poisson2D(40, 40) // n = 1600, 25 pages of 64
	b := matgen.RandomVector(a.N, 5)
	s, err := New(a, b, ranks, 64, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLayoutAndHalo(t *testing.T) {
	s := testSubstrate(t, 4)
	defer s.Close()
	if len(s.Ranks) != 4 {
		t.Fatalf("ranks = %d", len(s.Ranks))
	}
	covered := make([]int, s.NP)
	for _, r := range s.Ranks {
		for p := r.PLo; p < r.PHi; p++ {
			covered[p]++
			if s.Owner[p] != r.ID {
				t.Fatalf("owner[%d] = %d, want %d", p, s.Owner[p], r.ID)
			}
		}
		// Every halo page is off-rank and actually read by an owned row.
		for _, h := range r.Halo {
			if r.Owns(h) {
				t.Fatalf("rank %d lists owned page %d as halo", r.ID, h)
			}
			found := false
			for p := r.PLo; p < r.PHi && !found; p++ {
				for _, j := range s.Conn[p] {
					if j == h {
						found = true
						break
					}
				}
			}
			if !found {
				t.Fatalf("rank %d halo page %d is not in any owned row's read set", r.ID, h)
			}
		}
	}
	for p, c := range covered {
		if c != 1 {
			t.Fatalf("page %d covered %d times", p, c)
		}
	}
}

func TestExchangeAndSpMV(t *testing.T) {
	s := testSubstrate(t, 3)
	defer s.Close()
	x := s.AddVector("x")
	y := s.AddVector("y")
	// Owned shards hold x_i = i; ghost regions start stale.
	for _, r := range s.Ranks {
		xd := x.Of(r).Data
		for i := r.Lo; i < r.Hi; i++ {
			xd[i] = float64(i)
		}
	}
	s.SpMV("y", x, y)
	// Reference product on the dense global vector.
	xg := make([]float64, s.A.N)
	for i := range xg {
		xg[i] = float64(i)
	}
	want := make([]float64, s.A.N)
	s.A.MulVec(xg, want)
	got := make([]float64, s.A.N)
	s.Gather(y, got)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// The reduction matches the sequential dot product.
	if dot := s.Dot("<x,y>", x, y); math.Abs(dot-sparse.Dot(xg, want)) > math.Abs(dot)*1e-12 {
		t.Fatalf("dot = %v, want %v", dot, sparse.Dot(xg, want))
	}
}

func TestExchangeHealsGhostFaults(t *testing.T) {
	s := testSubstrate(t, 4)
	defer s.Close()
	x := s.AddVector("x")
	s.Scatter(matgen.RandomVector(s.A.N, 9), x)
	var r *Rank
	for _, cand := range s.Ranks {
		if len(cand.Halo) > 0 {
			r = cand
			break
		}
	}
	if r == nil {
		t.Fatal("no rank with a halo")
	}
	h := r.Halo[0]
	x.Of(r).Poison(h)
	r.Space.ScramblePending()
	if !x.Of(r).Failed(h) {
		t.Fatal("ghost page not failed")
	}
	s.Exchange(x, false)
	if x.Of(r).Failed(h) {
		t.Fatal("exchange did not heal the ghost fault")
	}
	lo, hi := s.Layout.Range(h)
	owner := x.R[s.Owner[h]]
	for i := lo; i < hi; i++ {
		if x.Of(r).Data[i] != owner.Data[i] {
			t.Fatalf("ghost data not re-imported at %d", i)
		}
	}
}

func TestStrictExchangePropagatesOwnerFaults(t *testing.T) {
	s := testSubstrate(t, 4)
	defer s.Close()
	x := s.AddVector("x")
	var r *Rank
	for _, cand := range s.Ranks {
		if len(cand.Halo) > 0 {
			r = cand
			break
		}
	}
	h := r.Halo[0]
	owner := s.Ranks[s.Owner[h]]
	x.Of(owner).Poison(h)
	owner.Space.ScramblePending()
	s.Exchange(x, true)
	if !x.Of(r).Failed(h) {
		t.Fatal("strict exchange did not propagate the owner's fault")
	}
	s.HealGhosts()
	if x.Of(r).Failed(h) {
		t.Fatal("HealGhosts left the propagated ghost bit set")
	}
	if !x.Of(owner).Failed(h) {
		t.Fatal("HealGhosts must not clear the owner's fault")
	}
}
