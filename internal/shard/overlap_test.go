package shard

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// TestInteriorBoundaryPartition pins the partition invariants: every
// owned page is exactly one of interior/boundary, interior pages read no
// ghost page, and every boundary page reads at least one.
func TestInteriorBoundaryPartition(t *testing.T) {
	s := testSubstrate(t, 4)
	defer s.Close()
	for _, r := range s.Ranks {
		seen := map[int]int{}
		for _, p := range r.Interior {
			seen[p]++
			for _, j := range s.Conn[p] {
				if !r.Owns(j) {
					t.Fatalf("rank %d interior page %d reads ghost %d", r.ID, p, j)
				}
			}
		}
		for _, p := range r.Boundary {
			seen[p]++
			ghost := false
			for _, j := range s.Conn[p] {
				if !r.Owns(j) {
					ghost = true
				}
			}
			if !ghost {
				t.Fatalf("rank %d boundary page %d reads no ghost", r.ID, p)
			}
		}
		for p := r.PLo; p < r.PHi; p++ {
			if seen[p] != 1 {
				t.Fatalf("rank %d page %d covered %d times", r.ID, p, seen[p])
			}
		}
	}
}

// TestOverlapStepMatchesBarrierSpMVDot runs the same d-update + SpMV +
// <d,q> superstep through the overlapped graph and the barrier path on
// identical inputs: output rows and the fused reduction must agree
// bitwise (same kernels, same partial slots, same sum order).
func TestOverlapStepMatchesBarrierSpMVDot(t *testing.T) {
	mk := func() (*Substrate, *Vec, *Vec, *Vec) {
		a := matgen.Poisson2D(40, 40)
		b := matgen.RandomVector(a.N, 5)
		s, err := New(a, b, 4, 64, 2, true)
		if err != nil {
			t.Fatal(err)
		}
		g := s.AddVector("g")
		d := s.AddVector("d")
		q := s.AddVector("q")
		s.Scatter(matgen.RandomVector(a.N, 11), g)
		s.Scatter(matgen.RandomVector(a.N, 13), d)
		return s, g, d, q
	}

	beta := 0.37
	sB, gB, dB, qB := mk()
	defer sB.Close()
	sB.RankOp("d", func(r *Rank, p, lo, hi int) {
		sparse.XpbyRange(gB.Of(r).Data, beta, dB.Of(r).Data, lo, hi)
	})
	wantDQ := sB.SpMVDot("q", dB, qB)

	sO, gO, dO, qO := mk()
	defer sO.Close()
	step := sO.NewOverlapStep("d|q", dO, qO, func(r *Rank, p, lo, hi int) {
		sparse.XpbyRange(gO.Of(r).Data, beta, dO.Of(r).Data, lo, hi)
	}, true, false)
	for rep := 0; rep < 3; rep++ { // replays must stay correct
		gotDQ, _ := step.Run()
		if rep == 0 && gotDQ != wantDQ {
			t.Fatalf("<d,q> overlapped %v, barrier %v", gotDQ, wantDQ)
		}
	}

	// Vectors after one application agree bitwise: rerun barrier twice
	// more so both sides applied the in-place d-update three times.
	for rep := 0; rep < 2; rep++ {
		sB.RankOp("d", func(r *Rank, p, lo, hi int) {
			sparse.XpbyRange(gB.Of(r).Data, beta, dB.Of(r).Data, lo, hi)
		})
		sB.SpMVDot("q", dB, qB)
	}
	got := make([]float64, sO.A.N)
	want := make([]float64, sB.A.N)
	sO.Gather(qO, got)
	sB.Gather(qB, want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("q[%d]: overlapped %v, barrier %v", i, got[i], want[i])
		}
	}
}

// TestOverlapStepHealsGhostFaults: a DUE in a ghost page of the input
// must be healed by the overlapped per-page import exactly as by the
// barrier Exchange.
func TestOverlapStepHealsGhostFaults(t *testing.T) {
	s := testSubstrate(t, 4)
	defer s.Close()
	x := s.AddVector("x")
	y := s.AddVector("y")
	s.Scatter(matgen.RandomVector(s.A.N, 9), x)
	var r *Rank
	for _, cand := range s.Ranks {
		if len(cand.Halo) > 0 {
			r = cand
			break
		}
	}
	h := r.Halo[0]
	x.Of(r).Poison(h)
	r.Space.ScramblePending()
	step := s.NewOverlapStep("q", x, y, nil, false, false)
	step.Run()
	if x.Of(r).Failed(h) {
		t.Fatal("overlapped import did not heal the ghost fault")
	}
	lo, hi := s.Layout.Range(h)
	owner := x.R[s.Owner[h]]
	for i := lo; i < hi; i++ {
		if x.Of(r).Data[i] != owner.Data[i] {
			t.Fatalf("ghost data not re-imported at %d", i)
		}
	}
	// And the product matches the barrier SpMV on the healed data.
	want := s.AddVector("want")
	s.SpMV("ref", x, want)
	for _, rr := range s.Ranks {
		for i := rr.Lo; i < rr.Hi; i++ {
			if y.Of(rr).Data[i] != want.Of(rr).Data[i] {
				t.Fatalf("y[%d] diverges after ghost heal", i)
			}
		}
	}
}

// TestPreparedOpsZeroAlloc pins the acceptance criterion: replaying the
// overlapped superstep and the prepared rank ops allocates nothing.
func TestPreparedOpsZeroAlloc(t *testing.T) {
	a := matgen.Poisson2D(64, 64)
	b := matgen.Ones(a.N)
	s, err := New(a, b, 4, 128, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := s.AddVector("g")
	d := s.AddVector("d")
	q := s.AddVector("q")
	x := s.AddVector("x")
	s.Scatter(b, g)
	beta, alpha := 0.5, 0.25
	step := s.NewOverlapStep("d|q", d, q, func(r *Rank, p, lo, hi int) {
		sparse.XpbyRange(g.Of(r).Data, beta, d.Of(r).Data, lo, hi)
	}, true, false)
	upd := s.PrepareRankOpDot("xg", func(r *Rank, p, lo, hi int) float64 {
		sparse.AxpyRange(alpha, d.Of(r).Data, x.Of(r).Data, lo, hi)
		return sparse.AxpyDotRange(-alpha, q.Of(r).Data, g.Of(r).Data, lo, hi)
	})
	iter := func() {
		step.Run()
		upd.RunDot()
	}
	for i := 0; i < 10; i++ {
		iter() // warm rings, conds, succ capacity
	}
	const n = 50
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		iter()
	}
	runtime.ReadMemStats(&m1)
	if allocs := float64(m1.Mallocs-m0.Mallocs) / n; allocs > 0.5 {
		t.Fatalf("prepared supersteps allocate %.2f/iter, want 0", allocs)
	}
	// The barrier primitives' substrate side is allocation-free too: the
	// only per-call allocation is the caller's own closure.
	s.Exchange(d, false)
	s.Dot("gg", g, g)
	var b0, b1 runtime.MemStats
	runtime.ReadMemStats(&b0)
	for i := 0; i < n; i++ {
		s.Exchange(d, false)
		s.Dot("gg", g, g)
		s.SpMVDot("q", d, q)
	}
	runtime.ReadMemStats(&b1)
	if allocs := float64(b1.Mallocs-b0.Mallocs) / n; allocs > 0.5 {
		t.Fatalf("barrier supersteps allocate %.2f/call-group, want 0", allocs)
	}
}

// TestPreparedRankOpDotBlockMatchesDots: the fused block reduction must
// reproduce the scalar Dot path bitwise per slot — same per-page kernel,
// same page-ascending sum order — and count whole missing pages.
func TestPreparedRankOpDotBlockMatchesDots(t *testing.T) {
	a := matgen.Poisson2D(40, 40)
	b := matgen.Ones(a.N)
	s, err := New(a, b, 4, 64, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.AddVector("u")
	v := s.AddVector("v")
	w := s.AddVector("w")
	s.Scatter(matgen.RandomVector(a.N, 11), u)
	s.Scatter(matgen.RandomVector(a.N, 12), v)
	s.Scatter(matgen.RandomVector(a.N, 13), w)
	cols := func(r *Rank) [3][]float64 {
		return [3][]float64{u.Of(r).Data, v.Of(r).Data, w.Of(r).Data}
	}
	pairs := [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 2}}
	op := s.PrepareRankOpDotBlock("block", len(pairs), func(r *Rank, p, lo, hi int, out []float64) {
		cs := cols(r)
		for k, pr := range pairs {
			out[k] = sparse.DotRange(cs[pr[0]], cs[pr[1]], lo, hi)
		}
	})
	red0 := s.Reductions()
	got := make([]float64, len(pairs))
	if missing := op.Run(got); missing != 0 {
		t.Fatalf("%d pages missing on a fault-free run", missing)
	}
	if d := s.Reductions() - red0; d != 1 {
		t.Fatalf("block reduction counted %d reduction supersteps, want 1", d)
	}
	vecs := [3]*Vec{u, v, w}
	for k, pr := range pairs {
		if want := s.Dot("ref", vecs[pr[0]], vecs[pr[1]]); got[k] != want {
			t.Fatalf("slot %d (<%d,%d>): %v, want %v (bitwise)", k, pr[0], pr[1], got[k], want)
		}
	}
	// Run accumulates into its destination, like Partial sums resumed
	// mid-recovery: a second pass doubles every slot.
	if missing := op.Run(got); missing != 0 {
		t.Fatalf("%d pages missing on replay", missing)
	}
	// (Only approximately: the carried sum folds the second pass's rows
	// in one at a time, so the rounding differs from 2x in the last ulp.)
	for k, pr := range pairs {
		want := 2 * s.Dot("ref2", vecs[pr[0]], vecs[pr[1]])
		if d := got[k] - want; d > 1e-12*math.Abs(want) || d < -1e-12*math.Abs(want) {
			t.Fatalf("slot %d accumulation: %v, want %v", k, got[k], want)
		}
	}
}
