// Communication-overlapping supersteps: the distributed hot path without
// the global barrier between halo exchange and SpMV.
//
// The barrier path (Exchange then spmvDots) synchronises every rank twice
// per SpMV: all ghost pages must land before any row computes. But the
// halo dependency structure says most rows never read a ghost page — a
// row-page whose connectivity stays inside the owned range (Rank.Interior)
// is computable the moment its input's owned pages exist. OverlapStep
// turns that observation into the task graph of one superstep:
//
//	upd[r]        (optional) produce the input's owned pages on rank r
//	halo[r,g]     import ghost page g from its owner — after upd[owner(g)]
//	interior[r]   SpMV rows with owned-only reads     — after upd[r]
//	boundary[r,p] SpMV rows of owned page p reading ghosts — after upd[r]
//	              and the halo imports of exactly the ghost pages Conn[p]
//	              lists (per-page gating, not a global barrier)
//
// so interior rows of every rank run while halo copies are still in
// flight, and a boundary page starts as soon as its own ghosts landed.
// The fused <in,out>/<out,out> reductions ride the SpMV pass exactly as
// in the barrier path (same kernels, same per-page partial slots, same
// coordinator sum order), so a no-fault overlapped solve is bitwise
// identical to a barrier solve.
//
// Fault semantics are unchanged: phases run unguarded and data losses
// apply only at iteration boundaries (ApplyPending), never mid-superstep;
// the per-page halo import performs the same full-page overwrite +
// MarkRecovered ghost healing as the non-strict Exchange; strict
// (fault-propagating) exchanges happen only inside recovery fixpoints,
// which stay on the barrier path. A DUE raised while the superstep is in
// flight sets the fault bit immediately and surfaces at the next
// boundary, exactly as on the barrier path — the overlap storm tests pin
// recovery counts to the barrier path's.
//
// All handles, dependency lists and bodies are built once (engine.Prepared
// style); Start/Finish replay them with zero allocations.
package shard

import (
	"repro/internal/engine"
	"repro/internal/taskrt"
)

// OverlapStep is a prepared communication-overlapping SpMV superstep
// out = A·in over owned rows, optionally preceded by a fused per-rank
// producer of in (the CG d-update) and fused with the global <in,out>
// and/or <out,out> reductions.
type OverlapStep struct {
	sub *Substrate
	in  *Vec
	out *Vec
	pre func(r *Rank, p, lo, hi int)

	xy, yy *engine.Partial // the substrate's shared reduction buffers

	upd      []*taskrt.Handle // per rank; nil when pre == nil
	halo     []*taskrt.Handle // one per (rank, ghost page)
	haloDep  [][]*taskrt.Handle
	interior []*taskrt.Handle // per rank
	intDep   [][]*taskrt.Handle
	boundary []*taskrt.Handle // one per (rank, boundary page)
	bndDep   [][]*taskrt.Handle
	wait     []*taskrt.Handle // every task above, prebuilt wait list

	label string
}

// NewOverlapStep prepares the superstep for the fixed (in, out) vector
// pair. pre, when non-nil, runs first on every owned page of each rank
// (producing in); wantXY/wantYY select the fused reductions, which use
// the substrate's shared partial buffers (one overlapped or barrier
// reduction superstep at a time, like every other substrate op).
func (s *Substrate) NewOverlapStep(label string, in, out *Vec, pre func(r *Rank, p, lo, hi int), wantXY, wantYY bool) *OverlapStep {
	st := &OverlapStep{sub: s, in: in, out: out, pre: pre, label: label}
	if wantXY {
		st.xy = s.part
	}
	if wantYY {
		st.yy = s.part2
	}
	rt := s.RT

	if pre != nil {
		st.upd = make([]*taskrt.Handle, len(s.Ranks))
		for i, r := range s.Ranks {
			r := r
			//due:hotpath
			st.upd[i] = rt.NewTask(taskrt.TaskSpec{Label: label + ":upd", Home: taskrt.HomeWorker(i), Run: func(int) {
				for p := r.PLo; p < r.PHi; p++ {
					lo, hi := s.Layout.Range(p)
					st.pre(r, p, lo, hi)
				}
			}})
		}
	}

	// Per-ghost-page halo imports, each gated only on the owner's
	// producer; haloOf remembers the handle per (rank, page) so boundary
	// tasks can depend on exactly the ghosts they read.
	haloOf := make([]map[int]*taskrt.Handle, len(s.Ranks))
	for i, r := range s.Ranks {
		r := r
		haloOf[i] = make(map[int]*taskrt.Handle, len(r.Halo))
		for _, p := range r.Halo {
			p := p
			// The import writes rank i's ghost page: home it with the
			// reader's other tasks, not the owner's.
			//due:hotpath
			h := rt.NewTask(taskrt.TaskSpec{Label: label + ":halo", Home: taskrt.HomeWorker(i), Run: func(int) {
				local := st.in.R[r.ID]
				lo, hi := s.Layout.Range(p)
				copy(local.Data[lo:hi], st.in.R[s.Owner[p]].Data[lo:hi])
				local.MarkRecovered(p)
			}})
			var dep []*taskrt.Handle
			if pre != nil {
				dep = []*taskrt.Handle{st.upd[s.Owner[p]]}
			}
			haloOf[i][p] = h
			st.halo = append(st.halo, h)
			st.haloDep = append(st.haloDep, dep)
		}
	}

	for i, r := range s.Ranks {
		r := r
		//due:hotpath
		intTask := rt.NewTask(taskrt.TaskSpec{Label: label + ":int", Home: taskrt.HomeWorker(i), Run: func(int) {
			for _, p := range r.Interior {
				lo, hi := s.Layout.Range(p)
				st.page(r, p, lo, hi)
			}
		}})
		st.interior = append(st.interior, intTask)
		var dep []*taskrt.Handle
		if pre != nil {
			dep = []*taskrt.Handle{st.upd[i]}
		}
		st.intDep = append(st.intDep, dep)

		for _, p := range r.Boundary {
			p := p
			//due:hotpath
			bndTask := rt.NewTask(taskrt.TaskSpec{Label: label + ":bnd", Home: taskrt.HomeWorker(i), Run: func(int) {
				lo, hi := s.Layout.Range(p)
				st.page(r, p, lo, hi)
			}})
			st.boundary = append(st.boundary, bndTask)
			var dep []*taskrt.Handle
			if pre != nil {
				dep = append(dep, st.upd[i])
			}
			for _, j := range s.Conn[p] {
				if !r.Owns(j) {
					dep = append(dep, haloOf[i][j])
				}
			}
			st.bndDep = append(st.bndDep, dep)
		}
	}

	st.wait = append(st.wait, st.upd...)
	st.wait = append(st.wait, st.halo...)
	st.wait = append(st.wait, st.interior...)
	st.wait = append(st.wait, st.boundary...)
	return st
}

// page computes one owned row-page of out with the same per-page partial
// slots (and bitwise the same values) as the barrier spmvDots/SpMV path.
// When only one reduction is wanted the single-dot kernel saves the other
// reduction's work, exactly as engine.SpMVDotPage does on the single-node
// hot path: <in,out> is <out,w> with w = in, and <out,out> is <out,w>
// with w = out.
//
//due:hotpath
func (st *OverlapStep) page(r *Rank, p, lo, hi int) {
	in, out := st.in.R[r.ID].Data, st.out.R[r.ID].Data
	switch {
	case st.xy == nil && st.yy == nil:
		st.sub.A.MulVecRange(in, out, lo, hi)
	case st.xy != nil && st.yy == nil:
		st.xy.Store(p, st.sub.A.MulVecDotVecRange(in, out, in, lo, hi))
	case st.xy == nil && st.yy != nil:
		st.yy.Store(p, st.sub.A.MulVecDotVecRange(in, out, out, lo, hi))
	default:
		sxy, syy := st.sub.A.MulVecDotRange(in, out, lo, hi)
		st.xy.Store(p, sxy)
		st.yy.Store(p, syy)
	}
}

// Start replays the whole graph. Producers are resubmitted before their
// dependents so reused handles register real edges into this round's
// runs. The previous Start must have been Finished.
func (st *OverlapStep) Start() {
	if st.xy != nil {
		st.xy.ResetMissing()
	}
	if st.yy != nil {
		st.yy.ResetMissing()
	}
	rt := st.sub.RT
	if st.upd != nil {
		rt.ResubmitAll(st.upd, nil)
	}
	for i, h := range st.halo {
		rt.Resubmit(h, st.haloDep[i])
	}
	for i, h := range st.interior {
		rt.Resubmit(h, st.intDep[i])
	}
	for i, h := range st.boundary {
		rt.Resubmit(h, st.bndDep[i])
	}
	if hook := st.sub.TestHook; hook != nil {
		hook("overlap:" + st.label)
	}
}

// Finish waits for the graph and returns the fused reductions (zero when
// not requested). The coordinator helps execute in-flight tasks, as in
// every substrate barrier.
func (st *OverlapStep) Finish() (xy, yy float64) {
	st.sub.RT.WaitAll(st.wait)
	if st.xy != nil || st.yy != nil {
		st.sub.reductions++
	}
	if st.xy != nil {
		xy, _ = st.xy.SumAvailable()
	}
	if st.yy != nil {
		yy, _ = st.yy.SumAvailable()
	}
	return xy, yy
}

// Run is Start followed by Finish.
func (st *OverlapStep) Run() (xy, yy float64) {
	st.Start()
	return st.Finish()
}

// PreparedRankOp is a replayable RankOp/RankOpDot/RankOpDot2 superstep:
// one persistent task per rank whose body reads per-iteration state
// through the solver's closure, resubmitted with zero allocations —
// engine.Prepared brought to the shard layer.
type PreparedRankOp struct {
	sub   *Substrate
	tasks []*taskrt.Handle
	dots  int
}

func (s *Substrate) prepareRankOp(label string, dots int, body func(r *Rank)) *PreparedRankOp {
	op := &PreparedRankOp{sub: s, dots: dots, tasks: make([]*taskrt.Handle, len(s.Ranks))}
	for i, r := range s.Ranks {
		r := r
		//due:hotpath
		op.tasks[i] = s.RT.NewTask(taskrt.TaskSpec{Label: label, Home: taskrt.HomeWorker(i), Run: func(int) { body(r) }})
	}
	return op
}

// PrepareRankOp prepares a replayable RankOp.
func (s *Substrate) PrepareRankOp(label string, fn func(r *Rank, p, lo, hi int)) *PreparedRankOp {
	//due:hotpath
	return s.prepareRankOp(label, 0, func(r *Rank) {
		for p := r.PLo; p < r.PHi; p++ {
			lo, hi := s.Layout.Range(p)
			fn(r, p, lo, hi)
		}
	})
}

// PrepareRankOpDot prepares a replayable RankOpDot (one fused reduction,
// stored in the substrate's shared partial buffer).
func (s *Substrate) PrepareRankOpDot(label string, fn func(r *Rank, p, lo, hi int) float64) *PreparedRankOp {
	//due:hotpath
	return s.prepareRankOp(label, 1, func(r *Rank) {
		for p := r.PLo; p < r.PHi; p++ {
			lo, hi := s.Layout.Range(p)
			s.part.Store(p, fn(r, p, lo, hi))
		}
	})
}

// PrepareRankOpDot2 prepares a replayable RankOpDot2 (two fused
// reductions).
func (s *Substrate) PrepareRankOpDot2(label string, fn func(r *Rank, p, lo, hi int) (float64, float64)) *PreparedRankOp {
	//due:hotpath
	return s.prepareRankOp(label, 2, func(r *Rank) {
		for p := r.PLo; p < r.PHi; p++ {
			lo, hi := s.Layout.Range(p)
			a, b := fn(r, p, lo, hi)
			s.part.Store(p, a)
			s.part2.Store(p, b)
		}
	})
}

// Submit resets the partial buffers this op uses and replays its tasks.
func (op *PreparedRankOp) Submit() {
	if op.dots >= 1 {
		op.sub.part.ResetMissing()
	}
	if op.dots >= 2 {
		op.sub.part2.ResetMissing()
	}
	op.sub.RT.ResubmitAll(op.tasks, nil)
	if hook := op.sub.TestHook; hook != nil {
		hook("rankop")
	}
}

// Wait blocks until the latest replay finished, without summing — the
// pipelined solvers defer the sum past the next superstep's submission
// (the allreduce/SpMV overlap).
func (op *PreparedRankOp) Wait() { op.sub.RT.WaitAll(op.tasks) }

// Sums returns the first reduction of the latest finished replay. A
// replay whose partials are never summed counts no reduction superstep —
// the deferred-sum discipline lets a solver carry fused partials it only
// consumes on drift checks (the s-step CG's rr) without paying for an
// allreduce it did not perform.
func (op *PreparedRankOp) Sums() float64 {
	op.sub.reductions++
	a, _ := op.sub.part.SumAvailable()
	return a
}

// Sums2 returns both reductions of the latest finished replay.
func (op *PreparedRankOp) Sums2() (float64, float64) {
	op.sub.reductions++
	a, _ := op.sub.part.SumAvailable()
	b, _ := op.sub.part2.SumAvailable()
	return a, b
}

// Run replays and waits.
func (op *PreparedRankOp) Run() {
	op.Submit()
	op.Wait()
}

// RunDot replays, waits and returns the fused reduction.
func (op *PreparedRankOp) RunDot() float64 {
	op.Run()
	return op.Sums()
}

// RunDot2 replays, waits and returns both fused reductions.
func (op *PreparedRankOp) RunDot2() (float64, float64) {
	op.Run()
	return op.Sums2()
}

// PreparedRankOpDotBlock is a replayable rank op with a vector-valued
// fused reduction: every page contributes a w-wide row of partials and
// one coordinator superstep sums them all. It is the block counterpart
// of PrepareRankOpDot — the s-step CG packs an entire Gram matrix
// (G, K'P, K'AP) into one such row, collapsing what classic CG spreads
// over 2s reductions into a single superstep per outer step.
type PreparedRankOpDotBlock struct {
	sub   *Substrate
	part  *engine.PartialBlock
	tasks []*taskrt.Handle
}

// PrepareRankOpDotBlock prepares a replayable block-reduction superstep
// of width w. fn fills out (pre-zeroed, length w) with the page's
// contribution; rows land in an op-owned PartialBlock so concurrent
// block ops never share partial state with the substrate's scalar
// buffers.
func (s *Substrate) PrepareRankOpDotBlock(label string, w int, fn func(r *Rank, p, lo, hi int, out []float64)) *PreparedRankOpDotBlock {
	op := &PreparedRankOpDotBlock{
		sub:   s,
		part:  engine.NewPartialBlock(s.NP, w),
		tasks: make([]*taskrt.Handle, len(s.Ranks)),
	}
	for i, r := range s.Ranks {
		r := r
		scratch := make([]float64, w) // per-rank: tasks of one op never share
		//due:hotpath
		op.tasks[i] = s.RT.NewTask(taskrt.TaskSpec{Label: label, Home: taskrt.HomeWorker(i), Run: func(int) {
			for p := r.PLo; p < r.PHi; p++ {
				lo, hi := s.Layout.Range(p)
				for k := range scratch {
					scratch[k] = 0
				}
				fn(r, p, lo, hi, scratch)
				op.part.StoreRow(p, scratch)
			}
		}})
	}
	return op
}

// Submit resets the op's partial block and replays its tasks.
func (op *PreparedRankOpDotBlock) Submit() {
	op.part.ResetMissing()
	op.sub.RT.ResubmitAll(op.tasks, nil)
	if hook := op.sub.TestHook; hook != nil {
		hook("rankop")
	}
}

// Wait blocks until the latest replay finished, without summing.
func (op *PreparedRankOpDotBlock) Wait() { op.sub.RT.WaitAll(op.tasks) }

// Sums accumulates the block reduction of the latest finished replay
// into dst (length = the op's width) and reports how many pages were
// lost to DUEs. One call is one reduction superstep however wide the
// block is — that is the whole point.
func (op *PreparedRankOpDotBlock) Sums(dst []float64) (missing int) {
	op.sub.reductions++
	return op.part.SumAvailable(dst)
}

// Run replays, waits and sums into dst.
func (op *PreparedRankOpDotBlock) Run(dst []float64) (missing int) {
	op.Submit()
	op.Wait()
	return op.Sums(dst)
}
