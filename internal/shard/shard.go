// Package shard is the method-agnostic rank-sharded substrate of §3.4: a
// functional model of the paper's MPI+tasks hybrid on which any Krylov
// method can run distributed. It owns everything that is not the
// recurrence itself — shard layout (contiguous page ranges per rank),
// per-rank fault domains, halo computation from the page connectivity of
// the matrix, halo exchange, allreduce-style scalar reduction and the
// FEIR/AFEIR recovery scheduling — expressed as engine task graphs on one
// shared internal/taskrt pool. internal/dist builds CG, BiCGStab and
// GMRES as thin recurrences on top.
//
// Data model: every rank holds full-length, globally indexed vectors in
// its own pagemem.Space. The rank's authoritative data lives in its owned
// page range [PLo, PHi); the halo pages listed in Rank.Halo act as ghost
// cells refreshed by Exchange before each SpMV; all other pages are never
// read. This keeps one indexing convention across the whole repository —
// the single-node engine operations, the Table 1 recovery relations of
// core.Relations and the distributed substrate all address the same
// global pages — at the cost of ghost storage proportional to the global
// size, which is what the hand-rolled predecessor paid for its ghost
// buffers too.
//
// Fault discipline: phases run unguarded (the single-node GMRES
// discipline) — a DUE sets the page's fault bit immediately but the data
// loss is applied only at iteration boundaries (ApplyPending), where the
// solvers repair through core.Relations. The §2.3 halo observation holds
// by construction: an inverse x repair reads only the page's connectivity
// set, which Exchange has already localised, so recovery stays rank-local
// plus one exchange.
package shard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/defaults"
	"repro/internal/engine"
	"repro/internal/pagemem"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

// Rank is one shard: a contiguous page range of the global vectors with a
// private fault domain, ghost pages for its halo, and an engine view
// restricted to its owned pages.
type Rank struct {
	ID       int
	PLo, PHi int // owned global pages
	Lo, Hi   int // owned global elements
	// Space is the rank's fault domain. Vectors are full-length and
	// globally indexed; only owned and halo pages carry live data.
	Space *pagemem.Space
	// Halo lists the off-rank global pages this rank's rows read.
	Halo []int
	// Interior lists the owned pages whose row connectivity stays inside
	// the owned range: their SpMV tasks never read a ghost page, so an
	// overlapped superstep runs them while the halo import is still in
	// flight. Boundary lists the remaining owned pages, whose tasks are
	// gated on the ghost pages they read (see OverlapStep).
	Interior []int
	Boundary []int
	// Eng is the shared engine restricted to the rank's owned pages: one
	// task per phase per rank, like the paper's one-process-per-rank runs.
	Eng *engine.Engine
	// Rel applies the Table 1 relations with this rank's scratch and
	// statistics, so rank repairs can run concurrently.
	Rel *core.Relations
	// Stats counts this rank's resilience activity (per-rank blast
	// radius accounting).
	Stats core.Stats
	// Scratch is a full-length buffer for SpMV targets and residuals.
	Scratch []float64

	pageScratch []float64
	sub         *Substrate
}

// Owns reports whether global page p is in the rank's owned range.
func (r *Rank) Owns(p int) bool { return p >= r.PLo && p < r.PHi }

// OwnedFailed returns the rank's failed pages of v inside its owned range.
func (r *Rank) OwnedFailed(v *Vec) []int {
	var out []int
	for _, p := range v.R[r.ID].FailedPages() {
		if r.Owns(p) {
			out = append(out, p)
		}
	}
	return out
}

// Vec is one protected vector sharded across ranks: R[i] is rank i's
// full-length copy (owned range authoritative, halo imported).
type Vec struct {
	Name string
	R    []*pagemem.Vector
}

// Of returns the rank's copy of the vector.
func (v *Vec) Of(r *Rank) *pagemem.Vector { return v.R[r.ID] }

// Substrate carries the shared state of one distributed solve.
type Substrate struct {
	A      *sparse.CSR
	B      []float64
	Bnorm  float64
	Layout sparse.BlockLayout
	NP     int
	// Conn is the page connectivity of A (engine.PageConnectivity): the
	// exact read set of every row-page, and thus the halo definition.
	Conn   [][]int
	Blocks *sparse.BlockSolverCache
	Owner  []int // global page -> rank id
	Ranks  []*Rank
	RT     *taskrt.Runtime
	// Eng is the root (non-resilient) engine over all pages; rank views
	// are derived from it with Engine.Sub.
	Eng *engine.Engine
	// Pre is the rank-local block-Jacobi preconditioner (EnablePrecond),
	// nil for unpreconditioned solves. Blocks coincide with pages and the
	// shard layout assigns whole pages to ranks, so M⁻¹ application and
	// recovery never cross a rank boundary — no extra halo traffic.
	Pre *precond.BlockJacobi

	// TestHook, when non-nil, is invoked by the supersteps while their
	// tasks are in flight (after submission, before the coordinator
	// waits), with a stage tag. Storm tests use it to land DUEs into halo
	// pages and boundary-row outputs mid-superstep; production code never
	// sets it.
	TestHook func(stage string)

	part  *engine.Partial
	part2 *engine.Partial // second slot set for fused double reductions

	// reductions counts global reduction supersteps: every coordinator
	// partial-sum that plays an allreduce (scalar or block) adds one,
	// regardless of how many values ride it — the communication-cost
	// metric of the s-step argument (a fused γ/δ pair and a whole Gram
	// block each count one, like one MPI_Allreduce of a small buffer).
	// Solvers snapshot it around recovery blocks to attribute steady-
	// state vs recovery communication.
	reductions int64

	// ownRT records whether the substrate created RT (and must close it)
	// or was handed an external, shared pool (Options.RT).
	ownRT bool

	// Coordinator-side gather scratch, reused across TrueResidual and
	// LossyInterpolateOwned calls instead of allocating 2N per check.
	gatherX, gatherRes []float64

	// Prepared per-rank superstep tasks plus one argument slot per
	// superstep kind. Supersteps are strictly sequential (each ends in a
	// barrier), so the one shared task set and the argument fields are
	// reused across calls — no handle slices, closures or label formatting
	// are allocated per superstep (the single-node solvers are 0
	// allocs/iter; the substrate's barrier path now matches).
	rankTasks []*taskrt.Handle // one per rank, body: stepFn(rank)
	stepFn    func(r *Rank)

	forEachFn func(r *Rank)                                   // ForEachRank body
	opFn      func(r *Rank, p, lo, hi int)                    // RankOp body
	opDotFn   func(r *Rank, p, lo, hi int) float64            // RankOpDot body
	opDot2Fn  func(r *Rank, p, lo, hi int) (float64, float64) // RankOpDot2 body
	xchVec    *Vec
	xchStrict bool
	dotX      *Vec
	dotY      *Vec
	dotYRel   []float64   // DotReliable second operand
	dotXs     [][]float64 // DotMixed per-rank first operands
	spmvIn    *Vec
	spmvOut   *Vec
	spmvXY    *engine.Partial // nil: skip the <in,out> partials
	spmvYY    *engine.Partial // nil: skip the <out,out> partials
	spmvRelY  []float64       // SpMVDotReliable reduction operand
	preIn     *Vec            // ApplyPrecondOwned operands
	preOut    *Vec

	// Bound step bodies (method values created once, not per call).
	forEachStepF, opStepF, opDotStepF, opDot2StepF func(r *Rank)
	xchStepF, dotStepF, dotRelStepF, dotMixStepF   func(r *Rank)
	spmvStepF, spmvDotStepF, spmvRelStepF          func(r *Rank)
	precondStepF                                   func(r *Rank)
}

// Options carries serving-layer resources a substrate can share instead
// of building its own. The zero value reproduces the historical behaviour
// (private pool, private block cache).
type Options struct {
	// RT is an externally owned task pool (typically taskrt.Shared); the
	// substrate submits to it but Close leaves it running. nil means a
	// private pool sized by the workers argument.
	RT *taskrt.Runtime
	// Blocks is a prefactorized diagonal-block cache for the same
	// operator, layout and SPD setting; nil means a private cache
	// factorized here. Mismatches are rejected loudly.
	Blocks *sparse.BlockSolverCache
}

// New builds the substrate for A x = b over the given number of ranks.
// workers <= 0 means one pool worker per rank; spd selects the diagonal
// block factorization family for the inverse relations.
func New(a *sparse.CSR, b []float64, ranks, pageDoubles, workers int, spd bool) (*Substrate, error) {
	return NewOpts(a, b, ranks, pageDoubles, workers, spd, Options{})
}

// NewOpts is New with shared serving-layer resources.
func NewOpts(a *sparse.CSR, b []float64, ranks, pageDoubles, workers int, spd bool, opts Options) (*Substrate, error) {
	if a.N != a.M {
		return nil, fmt.Errorf("shard: non-square matrix %dx%d", a.N, a.M)
	}
	if len(b) != a.N {
		return nil, fmt.Errorf("shard: rhs length %d for n=%d", len(b), a.N)
	}
	if ranks < 1 {
		ranks = 1
	}
	pageDoubles = defaults.PageDoublesOr(pageDoubles)
	layout := sparse.BlockLayout{N: a.N, BlockSize: pageDoubles}
	np := layout.NumBlocks()
	if ranks > np {
		ranks = np
	}
	s := &Substrate{
		A:      a,
		B:      append([]float64(nil), b...),
		Bnorm:  sparse.Norm2(b),
		Layout: layout,
		NP:     np,
		Owner:  make([]int, np),
		part:   engine.NewPartial(np),
		part2:  engine.NewPartial(np),
	}
	sharedBlocks := opts.Blocks != nil
	if sharedBlocks {
		if opts.Blocks.A != a || opts.Blocks.Layout != layout || opts.Blocks.SPD != spd {
			return nil, fmt.Errorf("shard: shared block cache mismatch (want matrix %p layout %+v spd=%v, have %p %+v spd=%v)",
				a, layout, spd, opts.Blocks.A, opts.Blocks.Layout, opts.Blocks.SPD)
		}
		s.Blocks = opts.Blocks
	} else {
		s.Blocks = sparse.NewBlockSolverCache(a, layout, spd)
	}
	s.gatherX = make([]float64, a.N)
	s.gatherRes = make([]float64, a.N)
	if s.Bnorm == 0 {
		s.Bnorm = 1
	}
	// Rank-parallel recovery tasks look blocks up concurrently: factorize
	// everything up front so the cache is read-only afterwards (the paper
	// notes these factorizations come for free with block-Jacobi, §5.1).
	// Leniently: a non-factorizable block only disables that block's
	// inverse repair, it does not make the system unsolvable. A shared
	// cache arrives prefactorized — that is the point of sharing it.
	if !sharedBlocks {
		s.Blocks.PrefactorizeLenient()
	}

	parts := engine.ChunkRanges(np, ranks)
	if opts.RT != nil {
		s.RT = opts.RT
	} else {
		if workers <= 0 {
			workers = len(parts)
		}
		s.RT = taskrt.New(workers)
		s.ownRT = true
	}
	s.Eng = engine.New(a, layout, s.RT, false, len(parts))
	s.Conn = s.Eng.Conn

	s.Ranks = make([]*Rank, len(parts))
	for id, pr := range parts {
		lo, _ := layout.Range(pr[0])
		hi := a.N
		if pr[1] < np {
			hi, _ = layout.Range(pr[1])
		}
		r := &Rank{
			ID: id, PLo: pr[0], PHi: pr[1], Lo: lo, Hi: hi,
			Space:       pagemem.NewSpace(a.N, pageDoubles),
			Eng:         s.Eng.Sub(pr[0], pr[1], 1),
			Scratch:     make([]float64, a.N),
			pageScratch: make([]float64, pageDoubles),
			sub:         s,
		}
		r.Rel = core.NewRelations(a, layout, s.Conn, s.Blocks, s.B, r.pageScratch, &r.Stats)
		for p := pr[0]; p < pr[1]; p++ {
			s.Owner[p] = id
		}
		s.Ranks[id] = r
	}
	// Halo sets: every off-rank page read by an owned row. The same pass
	// splits the owned pages into interior rows (connectivity confined to
	// the owned range — free to run under a still-in-flight halo import)
	// and boundary rows (gated on the ghost pages they read).
	for _, r := range s.Ranks {
		seen := map[int]bool{}
		for p := r.PLo; p < r.PHi; p++ {
			interior := true
			for _, j := range s.Conn[p] {
				if !r.Owns(j) {
					interior = false
					if !seen[j] {
						seen[j] = true
						r.Halo = append(r.Halo, j)
					}
				}
			}
			if interior {
				r.Interior = append(r.Interior, p)
			} else {
				r.Boundary = append(r.Boundary, p)
			}
		}
	}
	// One prepared task per rank, replayed by every barrier superstep with
	// the body routed through stepFn — zero allocations per superstep.
	// Each rank's task is homed to worker (rank mod workers): the same
	// worker re-touches the same owned pages superstep after superstep,
	// so the interior/boundary partition keeps its cache residency.
	s.rankTasks = make([]*taskrt.Handle, len(s.Ranks))
	for i, r := range s.Ranks {
		r := r
		s.rankTasks[i] = s.RT.NewTask(taskrt.TaskSpec{
			Label: "superstep",
			Home:  taskrt.HomeWorker(i),
			Run:   func(int) { s.stepFn(r) },
		})
	}
	s.forEachStepF = s.forEachStep
	s.opStepF = s.opStep
	s.opDotStepF = s.opDotStep
	s.opDot2StepF = s.opDot2Step
	s.xchStepF = s.xchStep
	s.dotStepF = s.dotStep
	s.dotRelStepF = s.dotRelStep
	s.dotMixStepF = s.dotMixStep
	s.spmvStepF = s.spmvStep
	s.spmvDotStepF = s.spmvDotStep
	s.spmvRelStepF = s.spmvRelStep
	s.precondStepF = s.precondStep
	return s, nil
}

// runStep replays the per-rank superstep tasks with the given body and
// waits — the allocation-free BSP superstep primitive every barrier
// operation below routes through.
func (s *Substrate) runStep(fn func(r *Rank)) {
	s.stepFn = fn
	s.RT.ResubmitAll(s.rankTasks, nil)
	s.RT.WaitAll(s.rankTasks)
}

// Close releases the task pool when the substrate owns it; an externally
// owned pool (Options.RT) is left running.
func (s *Substrate) Close() {
	if s.ownRT {
		s.RT.Close()
	}
}

// Reductions returns the number of global reduction supersteps performed
// so far (coordinator partial-sums; see the field comment). Coordinator-
// side only, so a plain read.
func (s *Substrate) Reductions() int64 { return s.reductions }

// AddVector registers one protected vector on every rank's fault domain.
func (s *Substrate) AddVector(name string) *Vec {
	v := &Vec{Name: name, R: make([]*pagemem.Vector, len(s.Ranks))}
	for i, r := range s.Ranks {
		v.R[i] = r.Space.AddVector(name)
	}
	return v
}

// Spaces returns the per-rank fault domains (the injection surface).
func (s *Substrate) Spaces() []*pagemem.Space {
	out := make([]*pagemem.Space, len(s.Ranks))
	for i, r := range s.Ranks {
		out[i] = r.Space
	}
	return out
}

// ForEachRank runs fn(r) as one task per rank on the shared pool and
// waits — the BSP superstep primitive for rank-granular work. The label
// is diagnostic only; the caller's closure is the only per-call
// allocation.
func (s *Substrate) ForEachRank(label string, fn func(r *Rank)) {
	_ = label
	s.forEachFn = fn
	s.runStep(s.forEachStepF)
}

func (s *Substrate) forEachStep(r *Rank) { s.forEachFn(r) }

// RankOp runs fn(r, p, lo, hi) for every owned page of every rank as one
// task per rank, and waits.
func (s *Substrate) RankOp(label string, fn func(r *Rank, p, lo, hi int)) {
	_ = label
	s.opFn = fn
	s.runStep(s.opStepF)
}

func (s *Substrate) opStep(r *Rank) {
	for p := r.PLo; p < r.PHi; p++ {
		lo, hi := s.Layout.Range(p)
		s.opFn(r, p, lo, hi)
	}
}

// Exchange imports every rank's halo pages of v from their owners — the
// §3.4 communication step. It must run at a barrier: owners' shards are
// quiescent, so concurrent rank tasks read disjoint owned ranges while
// writing only their own ghost pages. Importing overwrites the whole
// ghost page, which heals any DUE that landed in it (the halo pages of a
// vector are as replaceable as a recomputed q). OverlapStep runs the same
// per-page import without the barrier.
//
// strict additionally propagates the owner's fault state: a halo page
// whose owner copy is failed is marked failed locally instead of copied,
// so the local Table 1 relation guards see exactly the global failure
// map during recovery fixpoints.
func (s *Substrate) Exchange(v *Vec, strict bool) {
	s.xchVec, s.xchStrict = v, strict
	s.runStep(s.xchStepF)
}

//due:hotpath
func (s *Substrate) xchStep(r *Rank) {
	v, strict := s.xchVec, s.xchStrict
	local := v.R[r.ID]
	for _, p := range r.Halo {
		own := v.R[s.Owner[p]]
		if strict && own.Failed(p) {
			local.MarkFailed(p)
			continue
		}
		lo, hi := s.Layout.Range(p)
		copy(local.Data[lo:hi], own.Data[lo:hi])
		local.MarkRecovered(p)
	}
}

// Dot computes the global inner product <x, y> over owned pages: each
// rank stores its per-page partials into a shared engine.Partial (the
// slots are disjoint across ranks), and the coordinator's sum plays the
// allreduce.
func (s *Substrate) Dot(label string, x, y *Vec) float64 {
	_ = label
	s.part.ResetMissing()
	s.dotX, s.dotY = x, y
	s.runStep(s.dotStepF)
	s.reductions++
	sum, _ := s.part.SumAvailable()
	return sum
}

//due:hotpath
func (s *Substrate) dotStep(r *Rank) {
	x, y := s.dotX.R[r.ID].Data, s.dotY.R[r.ID].Data
	for p := r.PLo; p < r.PHi; p++ {
		lo, hi := s.Layout.Range(p)
		s.part.Store(p, sparse.DotRange(x, y, lo, hi))
	}
}

// DotReliable is Dot with the second operand in reliable (unsharded)
// memory, e.g. the BiCGStab shadow residual.
func (s *Substrate) DotReliable(label string, x *Vec, y []float64) float64 {
	_ = label
	s.part.ResetMissing()
	s.dotX, s.dotYRel = x, y
	s.runStep(s.dotRelStepF)
	s.reductions++
	sum, _ := s.part.SumAvailable()
	return sum
}

//due:hotpath
func (s *Substrate) dotRelStep(r *Rank) {
	x, y := s.dotX.R[r.ID].Data, s.dotYRel
	for p := r.PLo; p < r.PHi; p++ {
		lo, hi := s.Layout.Range(p)
		s.part.Store(p, sparse.DotRange(x, y, lo, hi))
	}
}

// DotMixed computes a global inner product where each rank contributes
// <xs[rank], y> over its owned pages — for per-rank scratch (like the
// GMRES w) against a sharded vector.
func (s *Substrate) DotMixed(label string, xs [][]float64, y *Vec) float64 {
	_ = label
	s.part.ResetMissing()
	s.dotXs, s.dotY = xs, y
	s.runStep(s.dotMixStepF)
	s.reductions++
	sum, _ := s.part.SumAvailable()
	return sum
}

//due:hotpath
func (s *Substrate) dotMixStep(r *Rank) {
	x, y := s.dotXs[r.ID], s.dotY.R[r.ID].Data
	for p := r.PLo; p < r.PHi; p++ {
		lo, hi := s.Layout.Range(p)
		s.part.Store(p, sparse.DotRange(x, y, lo, hi))
	}
}

// SpMV computes out = A * in on owned rows after refreshing in's halo.
func (s *Substrate) SpMV(label string, in, out *Vec) {
	_ = label
	s.Exchange(in, false)
	if s.TestHook != nil {
		s.TestHook("spmv")
	}
	s.spmvIn, s.spmvOut = in, out
	s.runStep(s.spmvStepF)
}

//due:hotpath
func (s *Substrate) spmvStep(r *Rank) {
	in, out := s.spmvIn.R[r.ID].Data, s.spmvOut.R[r.ID].Data
	for p := r.PLo; p < r.PHi; p++ {
		lo, hi := s.Layout.Range(p)
		s.A.MulVecRange(in, out, lo, hi)
	}
}

// SpMVDot computes out = A * in on owned rows (halo refresh included)
// fused with the global <in, out> reduction: every rank's SpMV tasks
// store their dot partials in the same pass that writes out, and the
// coordinator's sum plays the allreduce.
func (s *Substrate) SpMVDot(label string, in, out *Vec) float64 {
	xy, _ := s.spmvDots(label, in, out, true, false)
	return xy
}

// SpMVDot2 is SpMVDot additionally returning <out, out> — the BiCGStab
// t = A s superstep, where <t,s> and <t,t> both ride the SpMV's pass.
func (s *Substrate) SpMVDot2(label string, in, out *Vec) (xy, yy float64) {
	return s.spmvDots(label, in, out, true, true)
}

// SpMVNorm computes out = A * in fused with <out, out> only — the
// preconditioned BiCGStab t = A ŝ superstep, where <t,s> pairs t with a
// vector other than the SpMV input and stays a separate reduction.
func (s *Substrate) SpMVNorm(label string, in, out *Vec) float64 {
	_, yy := s.spmvDots(label, in, out, false, true)
	return yy
}

func (s *Substrate) spmvDots(label string, in, out *Vec, wantXY, wantYY bool) (xy, yy float64) {
	_ = label
	s.Exchange(in, false)
	if s.TestHook != nil {
		s.TestHook("spmv")
	}
	s.spmvXY, s.spmvYY = nil, nil
	if wantXY {
		s.part.ResetMissing()
		s.spmvXY = s.part
	}
	if wantYY {
		s.part2.ResetMissing()
		s.spmvYY = s.part2
	}
	s.spmvIn, s.spmvOut = in, out
	s.runStep(s.spmvDotStepF)
	if wantXY || wantYY {
		s.reductions++
	}
	if wantXY {
		xy, _ = s.part.SumAvailable()
	}
	if wantYY {
		yy, _ = s.part2.SumAvailable()
	}
	return xy, yy
}

//due:hotpath
func (s *Substrate) spmvDotStep(r *Rank) {
	in, out := s.spmvIn.R[r.ID].Data, s.spmvOut.R[r.ID].Data
	for p := r.PLo; p < r.PHi; p++ {
		lo, hi := s.Layout.Range(p)
		sxy, syy := s.A.MulVecDotRange(in, out, lo, hi)
		if s.spmvXY != nil {
			s.spmvXY.Store(p, sxy)
		}
		if s.spmvYY != nil {
			s.spmvYY.Store(p, syy)
		}
	}
}

// SpMVDotReliable computes out = A * in on owned rows fused with the
// global <out, y> reduction against reliable (unsharded) memory y — the
// BiCGStab q = A d̂ superstep with its <q, r̂0> reduction.
func (s *Substrate) SpMVDotReliable(label string, in, out *Vec, y []float64) float64 {
	_ = label
	s.Exchange(in, false)
	s.part.ResetMissing()
	s.spmvIn, s.spmvOut, s.spmvRelY = in, out, y
	s.runStep(s.spmvRelStepF)
	s.reductions++
	sum, _ := s.part.SumAvailable()
	return sum
}

//due:hotpath
func (s *Substrate) spmvRelStep(r *Rank) {
	in, out := s.spmvIn.R[r.ID].Data, s.spmvOut.R[r.ID].Data
	for p := r.PLo; p < r.PHi; p++ {
		lo, hi := s.Layout.Range(p)
		s.part.Store(p, s.A.MulVecDotVecRange(in, out, s.spmvRelY, lo, hi))
	}
}

// RankOpDot runs fn(r, p, lo, hi) for every owned page of every rank and
// reduces the per-page values fn returns into one global sum — the fused
// analogue of RankOp followed by Dot, for update kernels that can carry
// their reduction in the same pass (sparse.AxpyDotRange and friends).
func (s *Substrate) RankOpDot(label string, fn func(r *Rank, p, lo, hi int) float64) float64 {
	_ = label
	s.part.ResetMissing()
	s.opDotFn = fn
	s.runStep(s.opDotStepF)
	s.reductions++
	sum, _ := s.part.SumAvailable()
	return sum
}

//due:hotpath
func (s *Substrate) opDotStep(r *Rank) {
	for p := r.PLo; p < r.PHi; p++ {
		lo, hi := s.Layout.Range(p)
		s.part.Store(p, s.opDotFn(r, p, lo, hi))
	}
}

// RankOpDot2 is RankOpDot with two reductions per page — update kernels
// that produce a pair of partials in one pass (the BiCGStab phase-3
// g = s - ωt with both <g, r̂0> and <g, g>).
func (s *Substrate) RankOpDot2(label string, fn func(r *Rank, p, lo, hi int) (float64, float64)) (float64, float64) {
	_ = label
	s.part.ResetMissing()
	s.part2.ResetMissing()
	s.opDot2Fn = fn
	s.runStep(s.opDot2StepF)
	s.reductions++
	a, _ := s.part.SumAvailable()
	b, _ := s.part2.SumAvailable()
	return a, b
}

//due:hotpath
func (s *Substrate) opDot2Step(r *Rank) {
	for p := r.PLo; p < r.PHi; p++ {
		lo, hi := s.Layout.Range(p)
		a, b := s.opDot2Fn(r, p, lo, hi)
		s.part.Store(p, a)
		s.part2.Store(p, b)
	}
}

// EnablePrecond builds the block-Jacobi preconditioner over the
// substrate's page layout, reusing the prefactorized diagonal blocks of
// the recovery cache — the §5.1 observation that the preconditioner setup
// and the recovery solvers are the same factorizations. It fails if any
// diagonal block was not factorizable (the lenient prefactorization lost
// it), since a block-Jacobi preconditioner needs every block.
func (s *Substrate) EnablePrecond() error {
	pre, err := precond.FromCache(s.Blocks)
	if err != nil {
		return fmt.Errorf("shard: block-Jacobi setup: %w", err)
	}
	s.Pre = pre
	return nil
}

// ApplyPrecondOwned computes out = M⁻¹ in on every rank's owned pages.
// Block diagonality means no halo is needed: each page application reads
// exactly that page of in, so the operation is embarrassingly
// rank-parallel with zero communication.
func (s *Substrate) ApplyPrecondOwned(label string, in, out *Vec) {
	_ = label
	s.preIn, s.preOut = in, out
	s.runStep(s.precondStepF)
}

func (s *Substrate) precondStep(r *Rank) {
	in, out := s.preIn.Of(r).Data, s.preOut.Of(r).Data
	for p := r.PLo; p < r.PHi; p++ {
		_ = s.Pre.ApplyBlock(p, in, out)
	}
}

// RecoverPrecondOwned repairs every failed owned page of z by partial
// preconditioner application from src (z = M⁻¹ src, §3.2), per the
// method's recovery discipline. src's owned pages must have been repaired
// first; a page whose src is still failed is left for the caller's
// fallback. Rank-local by block diagonality.
func (s *Substrate) RecoverPrecondOwned(method core.Method, label string, z, src *Vec) {
	s.Recover(method, label, func(r *Rank) {
		for _, p := range r.OwnedFailed(z) {
			if src.Of(r).Failed(p) {
				continue
			}
			if s.Pre.ApplyBlock(p, src.Of(r).Data, z.Of(r).Data) != nil {
				continue
			}
			z.Of(r).MarkRecovered(p)
			r.Stats.PrecondPartialApplies++
		}
	})
}

// Gather assembles the global vector from the owned shards.
func (s *Substrate) Gather(v *Vec, out []float64) {
	for _, r := range s.Ranks {
		copy(out[r.Lo:r.Hi], v.R[r.ID].Data[r.Lo:r.Hi])
	}
}

// Scatter copies src into every rank's owned range of v.
func (s *Substrate) Scatter(src []float64, v *Vec) {
	for _, r := range s.Ranks {
		copy(v.R[r.ID].Data[r.Lo:r.Hi], src[r.Lo:r.Hi])
	}
}

// ResidualFromX recomputes g = b - A x on owned rows (with a fresh x
// halo). Callers must have resolved any x faults first.
func (s *Substrate) ResidualFromX(x, g *Vec) {
	s.Exchange(x, false)
	s.RankOp("g=b-Ax", func(r *Rank, p, lo, hi int) {
		xd := x.R[r.ID].Data
		gd := g.R[r.ID].Data
		s.A.MulVecRange(xd, r.Scratch, lo, hi)
		for i := lo; i < hi; i++ {
			gd[i] = s.B[i] - r.Scratch[i]
		}
	})
}

// ResidualFromXDot is ResidualFromX fused with the global <g, g>
// reduction: the residual norm rides the rebuild's own pass.
func (s *Substrate) ResidualFromXDot(x, g *Vec) float64 {
	s.Exchange(x, false)
	return s.RankOpDot("g=b-Ax,<g,g>", func(r *Rank, p, lo, hi int) float64 {
		xd := x.R[r.ID].Data
		gd := g.R[r.ID].Data
		s.A.MulVecRange(xd, r.Scratch, lo, hi)
		var gg float64
		for i := lo; i < hi; i++ {
			d := s.B[i] - r.Scratch[i]
			gd[i] = d
			gg += d * d
		}
		return gg
	})
}

// TrueResidual computes ||b - A x|| / ||b|| from the gathered iterate,
// in the substrate-owned scratch (no per-check allocation).
func (s *Substrate) TrueResidual(x *Vec) float64 {
	s.reductions++
	s.Gather(x, s.gatherX)
	s.A.MulVec(s.gatherX, s.gatherRes)
	sparse.Sub(s.B, s.gatherRes, s.gatherRes)
	return sparse.Norm2(s.gatherRes) / s.Bnorm
}

// ApplyPending applies enqueued data losses on every rank (a task-phase
// boundary: all workers quiescent) and returns the number applied,
// accounting them to the per-rank statistics.
func (s *Substrate) ApplyPending() int {
	total := 0
	for _, r := range s.Ranks {
		n := len(r.Space.ScramblePending())
		r.Stats.FaultsSeen += n
		total += n
	}
	return total
}

// AnyFault reports whether any rank has a failed page (owned or ghost).
func (s *Substrate) AnyFault() bool {
	for _, r := range s.Ranks {
		if r.Space.AnyFault() {
			return true
		}
	}
	return false
}

// OwnedFault reports whether any rank has a failed page inside its owned
// range — the damage that needs a relation (ghost damage heals by
// re-import).
func (s *Substrate) OwnedFault() bool {
	for _, r := range s.Ranks {
		for p := r.PLo; p < r.PHi; p++ {
			if r.Space.PageMask(p) != 0 {
				return true
			}
		}
	}
	return false
}

// HealGhosts blanks every failed page outside its rank's owned range:
// ghost data is re-imported by Exchange before any read, so a DUE there
// (or a fault bit propagated by a strict exchange) costs nothing beyond
// the import. Must run at a barrier.
func (s *Substrate) HealGhosts() {
	for _, r := range s.Ranks {
		for _, v := range r.Space.Vectors() {
			for _, p := range v.FailedPages() {
				if !r.Owns(p) {
					v.Remap(p)
					v.MarkRecovered(p)
				}
			}
		}
	}
}

// Recover schedules fn(r) for every rank with a visible fault per the
// method's discipline: MethodAFEIR submits the repairs as low-priority
// overlapped tasks (Fig 2b) so affected ranks recover concurrently with
// one another and with queued work; every other method runs them in the
// critical path (Fig 2a), one rank at a time. Repairs must be rank-local
// (reads confined to the rank's own vectors) — cross-rank data moves only
// through a prior strict Exchange.
//
//due:recovery
func (s *Substrate) Recover(method core.Method, label string, fn func(r *Rank)) {
	if method == core.MethodAFEIR {
		hs := make([]*taskrt.Handle, 0, len(s.Ranks))
		for _, r := range s.Ranks {
			if !r.Space.AnyFault() {
				continue
			}
			r := r
			hs = append(hs, s.Eng.OverlappedRecovery(fmt.Sprintf("rank%d:%s", r.ID, label), nil, func() { fn(r) }))
		}
		s.RT.WaitAll(hs)
		return
	}
	for _, r := range s.Ranks {
		if !r.Space.AnyFault() {
			continue
		}
		r := r
		s.Eng.CriticalRecovery(fmt.Sprintf("rank%d:%s", r.ID, label), func() { fn(r) })
	}
}

// LossyInterpolateOwned runs the §4.3 block-Jacobi interpolation for
// every failed owned page of x across ranks, on the gathered iterate,
// scattering the result back. Returns the number of interpolated pages.
func (s *Substrate) LossyInterpolateOwned(x *Vec) int {
	var failed []int
	for _, r := range s.Ranks {
		failed = append(failed, r.OwnedFailed(x)...)
	}
	if len(failed) == 0 {
		return 0
	}
	xg := s.gatherX
	s.Gather(x, xg)
	if !core.LossyInterpolate(s.A, s.Layout, s.Blocks, s.B, xg, failed) {
		return 0
	}
	s.Scatter(xg, x)
	for _, r := range s.Ranks {
		for _, p := range r.OwnedFailed(x) {
			x.R[r.ID].MarkRecovered(p)
		}
	}
	return len(failed)
}

// Stats aggregates the per-rank resilience counters.
func (s *Substrate) Stats() core.Stats {
	var out core.Stats
	for _, r := range s.Ranks {
		out.Add(r.Stats)
	}
	return out
}

// RankStats returns a snapshot of every rank's counters.
func (s *Substrate) RankStats() []core.Stats {
	out := make([]core.Stats, len(s.Ranks))
	for i, r := range s.Ranks {
		out[i] = r.Stats
	}
	return out
}
