package defaults

import (
	"testing"
	"time"
)

func TestFloatFallback(t *testing.T) {
	if got := Float(0, 2.5); got != 2.5 {
		t.Fatalf("Float(0) = %v", got)
	}
	if got := Float(-1, 2.5); got != 2.5 {
		t.Fatalf("Float(-1) = %v", got)
	}
	if got := Float(0.25, 2.5); got != 0.25 {
		t.Fatalf("Float(0.25) = %v", got)
	}
}

func TestIntFallback(t *testing.T) {
	if got := Int(0, 7); got != 7 {
		t.Fatalf("Int(0) = %v", got)
	}
	if got := Int(-3, 7); got != 7 {
		t.Fatalf("Int(-3) = %v", got)
	}
	if got := Int(4, 7); got != 4 {
		t.Fatalf("Int(4) = %v", got)
	}
}

func TestPaperConstants(t *testing.T) {
	// The paper-wide zero-value fallbacks every Config resolves through
	// (§5.1/§5.4): changing one of these changes every solver, so pin them.
	if got := TolOr(0); got != 1e-10 {
		t.Fatalf("TolOr(0) = %v", got)
	}
	if got := TolOr(1e-6); got != 1e-6 {
		t.Fatalf("TolOr(1e-6) = %v", got)
	}
	if got := PageDoublesOr(0); got != 512 {
		t.Fatalf("PageDoublesOr(0) = %v", got)
	}
	if got := PageDoublesOr(64); got != 64 {
		t.Fatalf("PageDoublesOr(64) = %v", got)
	}
	if got := MaxIterOr(0, 100); got != 1000 {
		t.Fatalf("MaxIterOr(0, 100) = %v", got)
	}
	if got := MaxIterOr(42, 100); got != 42 {
		t.Fatalf("MaxIterOr(42, 100) = %v", got)
	}
	if got := CheckpointIntervalOr(0); got != 100 {
		t.Fatalf("CheckpointIntervalOr(0) = %v", got)
	}
	if got := GMRESRestartOr(0); got != 30 {
		t.Fatalf("GMRESRestartOr(0) = %v", got)
	}
	if got := GMRESRestartOr(20); got != 20 {
		t.Fatalf("GMRESRestartOr(20) = %v", got)
	}
}

func TestServeConstants(t *testing.T) {
	// The serving-layer zero-value fallbacks: due-serve, the serve bench
	// and the in-process tests all resolve through these, so pin them.
	if got := ServeQueueDepthOr(0); got != 256 {
		t.Fatalf("ServeQueueDepthOr(0) = %v", got)
	}
	if got := ServeQueueDepthOr(8); got != 8 {
		t.Fatalf("ServeQueueDepthOr(8) = %v", got)
	}
	if got := ServeConcurrentOr(0); got != 4 {
		t.Fatalf("ServeConcurrentOr(0) = %v", got)
	}
	if got := ServeConcurrentOr(2); got != 2 {
		t.Fatalf("ServeConcurrentOr(2) = %v", got)
	}
	if got := ServeTimeoutOr(0); got != 2*time.Minute {
		t.Fatalf("ServeTimeoutOr(0) = %v", got)
	}
	if got := ServeTimeoutOr(time.Second); got != time.Second {
		t.Fatalf("ServeTimeoutOr(1s) = %v", got)
	}
	if got := ServeCacheBytesOr(0); got != 256<<20 {
		t.Fatalf("ServeCacheBytesOr(0) = %v", got)
	}
	if got := ServeCacheBytesOr(1 << 20); got != 1<<20 {
		t.Fatalf("ServeCacheBytesOr(1MiB) = %v", got)
	}
}
