// Package defaults centralises the zero-value fallbacks shared by every
// Config in the repository (§5.1/§5.4 of the paper): the convergence
// tolerance, the iteration budget, the page granularity and the
// checkpoint period. core.Config, dist.Config, solver.Options and
// experiments.Options all resolve their optional fields through these
// helpers, so a paper-wide constant changes in exactly one place.
package defaults

import "time"

const (
	// Tol is the relative residual convergence threshold (§5.4).
	Tol = 1e-10
	// PageDoubles is the fault/recovery granularity in float64 elements:
	// a 4 KiB page (§2.3).
	PageDoubles = 512
	// CheckpointInterval is the snapshot period in iterations used when
	// neither a fixed interval nor an MTBE estimate is configured.
	CheckpointInterval = 100
	// MaxIterFactor bounds iterations at MaxIterFactor*n when no explicit
	// budget is set.
	MaxIterFactor = 10
	// GMRESRestart is the Arnoldi cycle length m when none is configured.
	GMRESRestart = 30
	// BasisK is the s-step basis size of the communication-avoiding CG
	// when none is configured: k = 4 keeps the monomial basis well away
	// from its conditioning cliff while already folding four iterations
	// into one global reduction.
	BasisK = 4
	// ServeQueueDepth bounds the due-serve admission queue: a request
	// arriving past it is rejected immediately — shedding load beats
	// unbounded queueing latency.
	ServeQueueDepth = 256
	// ServeConcurrent is the number of solves due-serve dispatches
	// concurrently onto the shared pool.
	ServeConcurrent = 4
	// ServeTimeout is the per-request wall-clock budget enforced via
	// context cancellation.
	ServeTimeout = 2 * time.Minute
	// ServeCacheBytes caps the operator-context cache (CSR + factorized
	// diagonal blocks); least-recently-used contexts are evicted past it.
	ServeCacheBytes = 256 << 20
	// ServeBatchWidth is the kernel width of coalesced multi-RHS solves:
	// how many same-matrix requests merge into one batched solve that
	// streams the operator once for all of them.
	ServeBatchWidth = 4
	// ServeBatchWindow is how long a dispatcher holds a batch-opted
	// request open for same-matrix companions before solving with
	// whatever width it has.
	ServeBatchWindow = 2 * time.Millisecond
)

// BasisKOr resolves a configured s-step basis size, falling back to
// BasisK.
func BasisKOr(v int) int { return Int(v, BasisK) }

// GMRESRestartOr resolves a configured restart length, falling back to
// GMRESRestart.
func GMRESRestartOr(v int) int { return Int(v, GMRESRestart) }

// TolOr resolves a configured tolerance, falling back to Tol.
func TolOr(v float64) float64 { return Float(v, Tol) }

// PageDoublesOr resolves a configured page size, falling back to
// PageDoubles.
func PageDoublesOr(v int) int { return Int(v, PageDoubles) }

// MaxIterOr resolves a configured iteration budget for an n-dimensional
// system, falling back to MaxIterFactor*n.
func MaxIterOr(v, n int) int { return Int(v, MaxIterFactor*n) }

// CheckpointIntervalOr resolves a configured checkpoint period, falling
// back to CheckpointInterval.
func CheckpointIntervalOr(v int) int { return Int(v, CheckpointInterval) }

// ServeQueueDepthOr resolves a configured admission-queue bound, falling
// back to ServeQueueDepth.
func ServeQueueDepthOr(v int) int { return Int(v, ServeQueueDepth) }

// ServeConcurrentOr resolves a configured dispatch width, falling back to
// ServeConcurrent.
func ServeConcurrentOr(v int) int { return Int(v, ServeConcurrent) }

// ServeTimeoutOr resolves a configured per-request budget, falling back
// to ServeTimeout.
func ServeTimeoutOr(v time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return ServeTimeout
}

// ServeBatchWidthOr resolves a configured coalescing width, falling back
// to ServeBatchWidth.
func ServeBatchWidthOr(v int) int { return Int(v, ServeBatchWidth) }

// ServeBatchWindowOr resolves a configured coalescing window, falling
// back to ServeBatchWindow.
func ServeBatchWindowOr(v time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return ServeBatchWindow
}

// ServeCacheBytesOr resolves a configured cache cap, falling back to
// ServeCacheBytes.
func ServeCacheBytesOr(v int64) int64 {
	if v > 0 {
		return v
	}
	return ServeCacheBytes
}

// Float returns v unless it is non-positive, in which case d.
func Float(v, d float64) float64 {
	if v > 0 {
		return v
	}
	return d
}

// Int returns v unless it is non-positive, in which case d.
func Int(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}
