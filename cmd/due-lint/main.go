// due-lint enforces the repository's cross-cutting invariants as
// machine-checked law: zero-alloc hot paths, exactly-accounted
// reduction supersteps, clamped recovery priorities, cancellation
// polling, bitwise-reproducible kernels, and provenance-carrying bench
// artefacts. See DESIGN.md §9.
//
// Usage:
//
//	due-lint [-checks a,b,...] [packages]
//
// Exit codes:
//
//	0  clean
//	1  invariant violations found
//	2  tool failure (unparsable or untypeable package) — nothing may be
//	   concluded about the rest of the tree
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: due-lint [-checks a,b,...] [packages]\n\nChecks:\n")
		printChecks(os.Stderr)
	}
	flag.Parse()

	if *list {
		printChecks(os.Stdout)
		return
	}

	cfg := lint.Config{Patterns: flag.Args()}
	var err error
	cfg.Dir, err = os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "due-lint: %v\n", err)
		os.Exit(2)
	}
	if *checks != "" {
		for _, c := range strings.Split(*checks, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			if !knownCheck(c) {
				fmt.Fprintf(os.Stderr, "due-lint: unknown check %q (try -list)\n", c)
				os.Exit(2)
			}
			cfg.Checks = append(cfg.Checks, c)
		}
	}

	res, err := lint.Main(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "due-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Println(d.String())
	}
	// Tool failure dominates: a package that would not load may hide
	// any number of violations, so a "1" would overstate what we know.
	if len(res.ToolErrs) > 0 {
		for _, e := range res.ToolErrs {
			fmt.Fprintf(os.Stderr, "due-lint: tool failure: %s\n", e)
		}
		os.Exit(2)
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

func knownCheck(name string) bool {
	for _, a := range lint.Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

func printChecks(w *os.File) {
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-22s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "  %-22s %s\n", "due-directive", "//due: grammar itself (always on, not waivable)")
}
