// Command due-bench regenerates the paper's tables and figures from the
// reproduction: Table 2 and 3 (overheads and state breakdown), Figure 3
// (single-error convergence traces), Figure 4 (slowdown vs error rate —
// the CG panel, and a preconditioned panel sweeping PCG, PBiCGStab and
// PGMRES) and Figure 5 (64–1024-core scaling from the calibrated model,
// anchored by functional distributed runs with and without the
// preconditioner).
//
// Usage:
//
//	due-bench -exp table2 [-scale 20000] [-reps 5]
//	due-bench -exp fig4 -rates 1,10,50 -matrices thermal2,qa8fm
//	due-bench -exp fig4pcg -json BENCH_fig4.json
//	due-bench -exp kernels [-scale 65536] [-workers 4] [-kernel-iters 200] [-json BENCH_kernels.json]
//	due-bench -exp kernels -guard BENCH_kernels.json
//	due-bench -exp distkernels [-scale 65536] [-ranks 4] [-dist-iters 200] [-json BENCH_dist.json]
//	due-bench -exp policy [-scale 4096] [-seed 1] [-json BENCH_policy.json]
//	due-bench -exp policy -guard BENCH_policy.json
//	due-bench -exp serve [-scale 4096] [-serve-clients 4] [-serve-requests 40] [-json BENCH_serve.json]
//	due-bench -exp serve -guard BENCH_serve.json
//	due-bench -exp all
//
// -json writes the fig4/fig4pcg cells as BENCH_fig4.json-style output so
// the perf trajectory is tracked across PRs (CI runs a tiny-scale smoke).
// The kernels mode measures the hot-path baseline — kernel GFLOP/s, the
// fused-vs-unfused steady-state CG iteration, allocations per iteration
// and taskrt scheduling throughput — and writes BENCH_kernels.json; its
// -scale/-workers are the ordinary flags, so trajectory points at other
// configurations stay comparable (both recorded in the JSON provenance).
// The distkernels mode measures the distributed steady state — barrier
// vs overlapped vs pipelined CG iteration across ranks — and writes
// BENCH_dist.json. -guard compares a fresh kernels (or distkernels) run
// against the committed artefact and exits non-zero when the tracked
// speedup dropped more than 20% below the committed value (the CI
// perf-regression gate; the tolerance absorbs machine noise). The guard
// first refuses — with exit code 3, distinct from a regression — to
// compare artefacts whose num_cpu differs from the runner's: a parity
// number measured on one core is a different point on the trajectory,
// not a regression, and the refusal tells CI to regenerate instead of
// failing the build. Benching with GOMAXPROCS == 1 prints a loud
// warning and marks the JSON with "degraded_provenance" for the same
// reason.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/perfmodel"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2, table3, fig3, fig4, fig4pcg, fig5, all (plus the dedicated kernels, distkernels, serve, policy baselines)")
	scale := flag.Int("scale", 0, "matrix dimension for the workload analogues (default 4096)")
	reps := flag.Int("reps", 0, "repetitions per configuration (default 3; paper uses 50)")
	workers := flag.Int("workers", 0, "task-pool size (default 8, the paper's socket width)")
	pages := flag.Int("pages", 0, "page size in float64 values (default 512 = 4 KiB)")
	tol := flag.Float64("tol", 0, "convergence tolerance (default 1e-8)")
	rates := flag.String("rates", "", "comma-separated normalized error rates for fig4 (default 1,2,5,10,20,50)")
	matrices := flag.String("matrices", "", "comma-separated matrix subset (default all nine analogues)")
	seed := flag.Int64("seed", 1, "injection seed")
	jsonPath := flag.String("json", "", "write the fig4/fig4pcg sweeps (or the kernels/distkernels baselines) as machine-readable JSON for cross-PR perf tracking")
	kernelIters := flag.Int("kernel-iters", 0, "measured steady-state iterations for -exp kernels (default 200)")
	distIters := flag.Int("dist-iters", 0, "measured steady-state iterations per discipline for -exp distkernels (default 200)")
	ranks := flag.Int("ranks", 0, "shard count for -exp distkernels (default 4)")
	serveClients := flag.Int("serve-clients", 0, "concurrent clients for -exp serve (default 4)")
	serveRequests := flag.Int("serve-requests", 0, "measured cached solves for -exp serve (default 40)")
	guard := flag.String("guard", "", "committed BENCH_kernels.json / BENCH_dist.json / BENCH_serve.json / BENCH_policy.json to compare a fresh -exp kernels / distkernels / serve / policy run against; exits 1 when the tracked speedup drops >20% below it, 3 when the artefact's num_cpu differs from this runner's (regenerate, don't compare)")
	flag.Parse()

	// One degraded-provenance warning per invocation, whatever -exp runs:
	// the single-core caveat applies to every timing number we print.
	warnDegraded()

	opts := experiments.Options{
		Scale:       *scale,
		Reps:        *reps,
		Workers:     *workers,
		PageDoubles: *pages,
		Tol:         *tol,
		Seed:        *seed,
	}
	if *rates != "" {
		for _, f := range strings.Split(*rates, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fatalf("bad -rates entry %q: %v", f, err)
			}
			opts.Rates = append(opts.Rates, v)
		}
	}
	if *matrices != "" {
		opts.Matrices = strings.Split(*matrices, ",")
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fatalf("%s: %v", name, err)
		}
	}

	run("table2", func() error {
		res, err := experiments.Table2(opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})
	run("table3", func() error {
		res, err := experiments.Table3(opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
		return nil
	})
	run("fig3", func() error {
		res, err := experiments.Fig3(opts)
		if err != nil {
			return err
		}
		fmt.Println(res)
		// Full traces as CSV on demand.
		if os.Getenv("DUE_BENCH_TRACES") != "" {
			for _, s := range res.Series {
				for _, p := range s.Points {
					fmt.Printf("trace,%s,%.6f,%.4f\n", s.Method, p.Time.Seconds(), p.LogRes)
				}
			}
		}
		return nil
	})
	// kernels/distkernels are not part of -exp all: they are the
	// dedicated hot-path baselines with their own scale/worker defaults
	// (65536 rows, 4 workers / 4 ranks).
	if *exp == "kernels" {
		res, err := experiments.Kernels(opts, *kernelIters)
		if err != nil {
			fatalf("kernels: %v", err)
		}
		fmt.Println(res)
		writeJSON(orDefault(*jsonPath, "BENCH_kernels.json"), res)
		if *guard != "" {
			guardKernels(*guard, res)
		}
		return
	}
	if *exp == "distkernels" {
		res, err := experiments.DistKernels(opts, *ranks, *distIters)
		if err != nil {
			fatalf("distkernels: %v", err)
		}
		fmt.Println(res)
		writeJSON(orDefault(*jsonPath, "BENCH_dist.json"), res)
		if *guard != "" {
			guardDistKernels(*guard, res)
		}
		return
	}
	if *exp == "policy" {
		res, err := experiments.RunPolicy(experiments.PolicyOptions{
			Scale:       *scale,
			Workers:     *workers,
			PageDoubles: *pages,
			Tol:         *tol,
			Reps:        *reps,
			Seed:        *seed,
		})
		if err != nil {
			fatalf("policy: %v", err)
		}
		fmt.Println(res)
		path := orDefault(*jsonPath, "BENCH_policy.json")
		refuseDegradedOverwrite(path, res.Provenance)
		writeJSON(path, res)
		if *guard != "" {
			guardPolicy(*guard, res)
		}
		return
	}
	if *exp == "serve" {
		res, err := experiments.Serve(experiments.ServeOptions{
			Scale:    *scale,
			Workers:  *workers,
			Clients:  *serveClients,
			Requests: *serveRequests,
			Seed:     *seed,
		})
		if err != nil {
			fatalf("serve: %v", err)
		}
		fmt.Println(res)
		path := orDefault(*jsonPath, "BENCH_serve.json")
		refuseDegradedOverwrite(path, res.Provenance)
		refuseBatchlessOverwrite(path, res)
		writeJSON(path, res)
		if *guard != "" {
			guardServe(*guard, res)
		}
		return
	}

	var fig4Results []*experiments.Fig4Result
	run("fig4", func() error {
		res, err := experiments.Fig4(opts, false)
		if err != nil {
			return err
		}
		fmt.Println(res)
		printFig4Cells(res)
		fig4Results = append(fig4Results, res)
		return nil
	})
	run("fig4pcg", func() error {
		res, err := experiments.Fig4(opts, true)
		if err != nil {
			return err
		}
		fmt.Println(res)
		printFig4Cells(res)
		fig4Results = append(fig4Results, res)
		return nil
	})
	run("fig5", func() error {
		m := perfmodel.New()
		fmt.Println("Figure 5: speedup of the MPI+task resilient CGs (modelled, 512^3 27-pt stencil)")
		fmt.Printf("ideal parallel efficiency at 1024 cores: %.2f%% (paper: 80.17%%)\n",
			m.ParallelEfficiency(1024)*100)
		for _, errs := range []int{1, 2} {
			fmt.Printf("\n%d error(s) per run:\n%-10s", errs, "cores")
			for _, c := range perfmodel.Fig5Cores {
				fmt.Printf("%8d", c)
			}
			fmt.Println()
			for _, curve := range m.Fig5() {
				if curve.Errors != errs {
					continue
				}
				fmt.Printf("%-10s", curve.Method)
				for _, s := range curve.Speedup {
					fmt.Printf("%8.2f", s)
				}
				fmt.Println()
			}
		}
		fmt.Println("\nfunctional validation (goroutine ranks, 16^3 stencil, 2 injected errors):")
		for _, spec := range []struct {
			solver  string
			methods []core.Method
		}{
			{"cg", []core.Method{core.MethodFEIR, core.MethodLossy, core.MethodCheckpoint}},
			{"bicgstab", []core.Method{core.MethodFEIR, core.MethodAFEIR}},
			{"gmres", []core.Method{core.MethodFEIR, core.MethodAFEIR}},
		} {
			for _, meth := range spec.methods {
				for _, precond := range []bool{false, true} {
					if precond && meth != core.MethodFEIR {
						continue // one preconditioned run per solver
					}
					res, err := experiments.ValidateDistributedSolver(spec.solver, meth, 4, 2, precond, opts)
					if err != nil {
						return err
					}
					fmt.Printf("  %-9s %-6s precond=%-5v converged=%v iterations=%d residual=%.2e faults=%d\n",
						spec.solver, meth, precond, res.Converged, res.Iterations, res.RelResidual, res.Stats.FaultsSeen)
				}
			}
		}
		return nil
	})

	if *jsonPath != "" {
		if len(fig4Results) == 0 {
			fatalf("-json set but no fig4/fig4pcg sweep ran (use -exp fig4, fig4pcg or all)")
		}
		if err := writeBenchJSON(*jsonPath, opts, fig4Results); err != nil {
			fatalf("writing %s: %v", *jsonPath, err)
		}
	}
}

// benchJSON is the machine-readable fig4 artefact tracked across PRs:
// every (solver, matrix, rate, method) cell with and without
// preconditioning, plus the harmonic-mean panels.
//
//due:bench-artefact
type benchJSON struct {
	Options    experiments.Options       `json:"options"`
	Fig4       []*experiments.Fig4Result `json:"fig4"`
	Provenance experiments.Provenance    `json:"provenance"`
}

func writeBenchJSON(path string, opts experiments.Options, results []*experiments.Fig4Result) error {
	writeJSON(path, benchJSON{
		Options:    opts,
		Fig4:       results,
		Provenance: experiments.CollectProvenance(),
	})
	return nil
}

func printFig4Cells(res *experiments.Fig4Result) {
	fmt.Println("per-matrix cells (solver, matrix, rate, method, slowdown%, stddev, failures):")
	for _, c := range res.Cells {
		fmt.Printf("  %-9s %-14s %3dx %-8s %8.1f%% ±%5.1f%% %d\n",
			c.Solver, c.Matrix, c.Rate, c.Method, c.Slowdown*100, c.StdDev*100, c.Failures)
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("marshal %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// warnDegraded makes single-core bench runs impossible to mistake for
// regressions: with GOMAXPROCS == 1 every latency-hiding contrast
// (overlap vs barrier, recovery overlap, affinity) collapses to parity,
// so the numbers are a different trajectory, not a slowdown. The JSON
// carries the same fact as "degraded_provenance": true.
func warnDegraded() {
	if runtime.GOMAXPROCS(0) > 1 {
		return
	}
	fmt.Fprintln(os.Stderr, strings.Repeat("=", 72))
	fmt.Fprintln(os.Stderr, "WARNING: GOMAXPROCS == 1 — DEGRADED BENCH PROVENANCE")
	fmt.Fprintln(os.Stderr, "Overlap, pipelining and affinity gains need idle cores; on one core")
	fmt.Fprintln(os.Stderr, "they collapse to parity. These numbers are NOT comparable to multi-")
	fmt.Fprintln(os.Stderr, "core artefacts and must not be committed as the tracked trajectory.")
	fmt.Fprintln(os.Stderr, "The JSON is marked with \"degraded_provenance\": true.")
	fmt.Fprintln(os.Stderr, strings.Repeat("=", 72))
}

// guardProvenance refuses — with exit code 3, distinct from the exit 1
// of a real regression — to compare artefacts across different core
// counts: the overlap/pipelining/affinity speedups are functions of
// num_cpu, so a mismatch means "regenerate on this host", never "the
// code got slower". CI treats exit 3 as the regenerate-and-commit path.
func guardProvenance(committedPath string, committed, fresh experiments.Provenance) {
	if committed.NumCPU == fresh.NumCPU {
		return
	}
	fmt.Fprintf(os.Stderr, "guard: REFUSING to compare %s: committed num_cpu=%d, this runner num_cpu=%d\n"+
		"guard: speedups are functions of the core count — regenerate the artefact on this host (exit 3)\n",
		committedPath, committed.NumCPU, fresh.NumCPU)
	os.Exit(3)
}

// guardKernels is the CI perf-regression gate: the fresh cg_iter_speedup
// must not drop more than 20% below the committed artefact's. The
// tolerance absorbs CI machine noise; a real regression (losing the
// fused/prepared/stealing gains) far exceeds it.
func guardKernels(committedPath string, fresh *experiments.KernelsResult) {
	data, err := os.ReadFile(committedPath)
	if err != nil {
		fatalf("guard: %v", err)
	}
	var committed experiments.KernelsResult
	if err := json.Unmarshal(data, &committed); err != nil {
		fatalf("guard: parsing %s: %v", committedPath, err)
	}
	guardProvenance(committedPath, committed.Provenance, fresh.Provenance)
	if committed.IterSpeedup <= 0 {
		fatalf("guard: %s has no positive cg_iter_speedup — wrong file for -guard? (the gate must not be silently disarmed)", committedPath)
	}
	floor := committed.IterSpeedup * 0.8
	if fresh.IterSpeedup < floor {
		fatalf("guard: cg_iter_speedup %.3f dropped more than 20%% below committed %.3f (floor %.3f) — hot-path regression\n"+
			"guard: fresh     %+v\nguard: committed %+v\n"+
			"guard: if the provenance lines differ in core count or Go release, regenerate the committed artefact on a comparable host instead of relaxing the gate",
			fresh.IterSpeedup, committed.IterSpeedup, floor, fresh.Provenance, committed.Provenance)
	}
	fmt.Printf("guard: cg_iter_speedup %.3f within 20%% of committed %.3f\n", fresh.IterSpeedup, committed.IterSpeedup)
}

// guardDistKernels gates the distributed baseline: the overlap speedup
// (timing, 20% tolerance for machine noise) and the communication-
// avoiding reduction ratio (structural — counted from the substrates'
// own reduction counters, ≈ 2k in the steady state, so any drop means
// cacg started spending extra reduction supersteps, not that the
// machine was busy).
func guardDistKernels(committedPath string, fresh *experiments.DistKernelsResult) {
	data, err := os.ReadFile(committedPath)
	if err != nil {
		fatalf("guard: %v", err)
	}
	var committed experiments.DistKernelsResult
	if err := json.Unmarshal(data, &committed); err != nil {
		fatalf("guard: parsing %s: %v", committedPath, err)
	}
	guardProvenance(committedPath, committed.Provenance, fresh.Provenance)
	if committed.OverlapSpeedup <= 0 || committed.CAReductionRatio <= 0 {
		fatalf("guard: %s has no positive dist_cg_overlap_speedup / ca_reduction_ratio — wrong file for -guard? (the gate must not be silently disarmed)", committedPath)
	}
	bad := false
	if floor := committed.OverlapSpeedup * 0.8; fresh.OverlapSpeedup < floor {
		fmt.Fprintf(os.Stderr, "guard: dist_cg_overlap_speedup %.3f dropped more than 20%% below committed %.3f (floor %.3f) — overlap regression\n",
			fresh.OverlapSpeedup, committed.OverlapSpeedup, floor)
		bad = true
	}
	if floor := committed.CAReductionRatio * 0.8; fresh.CAReductionRatio < floor {
		fmt.Fprintf(os.Stderr, "guard: ca_reduction_ratio %.2f dropped more than 20%% below committed %.2f (floor %.2f) — cacg is spending extra reductions\n",
			fresh.CAReductionRatio, committed.CAReductionRatio, floor)
		bad = true
	}
	if bad {
		fatalf("guard: fresh     %+v\nguard: committed %+v", fresh.Provenance, committed.Provenance)
	}
	fmt.Printf("guard: dist_cg_overlap_speedup %.3f and ca_reduction_ratio %.2f within 20%% of committed (%.3f, %.2f)\n",
		fresh.OverlapSpeedup, fresh.CAReductionRatio, committed.OverlapSpeedup, committed.CAReductionRatio)
}

// guardServe gates the serving layer on two axes: cached throughput
// (timing, the usual 20% tolerance for machine noise) and the
// zero-rebuild claim (structural — counted by the factorization and
// graph-preparation counters over the measured warm window, so any
// nonzero value means the operator cache stopped amortizing setup, not
// that the machine was busy).
func guardServe(committedPath string, fresh *experiments.ServeResult) {
	data, err := os.ReadFile(committedPath)
	if err != nil {
		fatalf("guard: %v", err)
	}
	var committed experiments.ServeResult
	if err := json.Unmarshal(data, &committed); err != nil {
		fatalf("guard: parsing %s: %v", committedPath, err)
	}
	guardProvenance(committedPath, committed.Provenance, fresh.Provenance)
	if committed.CachedSolvesPerSec <= 0 || committed.BatchSpeedup <= 0 {
		fatalf("guard: %s has no positive cached_solves_per_sec / batch_speedup — wrong file for -guard? (the gate must not be silently disarmed)", committedPath)
	}
	if fresh.FactorizationsAfterWarmup != 0 || fresh.GraphPrepsAfterWarmup != 0 {
		fatalf("guard: warm traffic performed %d factorizations and %d graph preparations — the operator cache stopped amortizing setup (structural regression, not machine noise)",
			fresh.FactorizationsAfterWarmup, fresh.GraphPrepsAfterWarmup)
	}
	if !fresh.BatchColumnsExact {
		fatalf("guard: a coalesced batch member's solution diverged bitwise from its solo solve — per-column exactness broke (structural regression, not machine noise)")
	}
	bad := false
	if floor := committed.CachedSolvesPerSec * 0.8; fresh.CachedSolvesPerSec < floor {
		fmt.Fprintf(os.Stderr, "guard: cached_solves_per_sec %.2f dropped more than 20%% below committed %.2f (floor %.2f) — serving-path regression\n",
			fresh.CachedSolvesPerSec, committed.CachedSolvesPerSec, floor)
		bad = true
	}
	if floor := committed.BatchSpeedup * 0.8; fresh.BatchSpeedup < floor {
		fmt.Fprintf(os.Stderr, "guard: batch_speedup %.2f dropped more than 20%% below committed %.2f (floor %.2f) — coalescing stopped amortizing the operator pass\n",
			fresh.BatchSpeedup, committed.BatchSpeedup, floor)
		bad = true
	}
	if bad {
		fatalf("guard: fresh     %+v\nguard: committed %+v\n"+
			"guard: if the provenance lines differ in core count or Go release, regenerate the committed artefact on a comparable host instead of relaxing the gate",
			fresh.Provenance, committed.Provenance)
	}
	fmt.Printf("guard: cached_solves_per_sec %.2f and batch_speedup %.2f within 20%% of committed (%.2f, %.2f); zero rebuilds after warmup; batched columns exact\n",
		fresh.CachedSolvesPerSec, fresh.BatchSpeedup, committed.CachedSolvesPerSec, committed.BatchSpeedup)
}

// guardPolicy gates the adaptive-resilience layer on two axes. The
// structural axis is counter-based and noise-free: the adaptive run
// must converge under the scripted ramp, actually switch methods, and
// detect silent flips through the checksum coverage — losing any of
// those means the controller or the ABFT path broke, not that the
// machine was busy. The timing axis bounds the adaptive run against the
// best static comparator with a percentage-POINT slack (the quantity is
// already a relative overhead, so a ratio floor would misfire around
// zero).
func guardPolicy(committedPath string, fresh *experiments.PolicyResult) {
	data, err := os.ReadFile(committedPath)
	if err != nil {
		fatalf("guard: %v", err)
	}
	var committed experiments.PolicyResult
	if err := json.Unmarshal(data, &committed); err != nil {
		fatalf("guard: parsing %s: %v", committedPath, err)
	}
	guardProvenance(committedPath, committed.Provenance, fresh.Provenance)
	if len(committed.Runs) == 0 || len(committed.Decisions) == 0 {
		fatalf("guard: %s has no runs/decisions — wrong file for -guard? (the gate must not be silently disarmed)", committedPath)
	}
	var adaptive *experiments.PolicyRun
	for i := range fresh.Runs {
		if fresh.Runs[i].Name == "adaptive" {
			adaptive = &fresh.Runs[i]
		}
	}
	if adaptive == nil {
		fatalf("guard: fresh run has no adaptive comparator")
	}
	if !adaptive.Converged || adaptive.Switches < 1 || adaptive.SDCDetected == 0 {
		fatalf("guard: adaptive run structural failure: converged=%v switches=%d sdc_detected=%d — controller or ABFT coverage broke (structural, not machine noise)",
			adaptive.Converged, adaptive.Switches, adaptive.SDCDetected)
	}
	ceiling := committed.AdaptiveVsBestStaticPct + 25
	if fresh.AdaptiveVsBestStaticPct > ceiling {
		fatalf("guard: adaptive_vs_best_static_pct %.1f%% exceeds committed %.1f%% by more than 25 points (ceiling %.1f%%) — the controller stopped earning its keep\n"+
			"guard: fresh     %+v\nguard: committed %+v",
			fresh.AdaptiveVsBestStaticPct, committed.AdaptiveVsBestStaticPct, ceiling, fresh.Provenance, committed.Provenance)
	}
	fmt.Printf("guard: adaptive converged with %d switches, %d SDC detections; vs best static %+.1f%% (committed %+.1f%%)\n",
		adaptive.Switches, adaptive.SDCDetected, fresh.AdaptiveVsBestStaticPct, committed.AdaptiveVsBestStaticPct)
}

// refuseDegradedOverwrite is the write-side counterpart of the guard's
// exit-3 refusal: -exp serve must not silently replace a committed
// multi-core BENCH_serve.json with a single-core regeneration, because
// the single-core point is a different trajectory, not an update.
func refuseDegradedOverwrite(path string, fresh experiments.Provenance) {
	data, err := os.ReadFile(path)
	if err != nil {
		return // nothing committed at this path yet
	}
	var committed struct {
		Provenance experiments.Provenance `json:"provenance"`
	}
	if err := json.Unmarshal(data, &committed); err != nil {
		return // not a bench artefact; writeJSON will replace it knowingly
	}
	if committed.Provenance.NumCPU > 1 && fresh.NumCPU == 1 {
		fmt.Fprintf(os.Stderr, "refusing to overwrite %s: the committed artefact was measured on %d CPUs and this runner has 1 — regenerate on a comparable host, or pass -json to write the degraded point elsewhere\n",
			path, committed.Provenance.NumCPU)
		os.Exit(3)
	}
}

// refuseBatchlessOverwrite keeps the batched-serving columns from
// silently vanishing: once the committed BENCH_serve.json carries a
// measured batched mix, a regeneration whose batched phase produced no
// solves or never proved per-column exactness is a degraded point on the
// trajectory, not an update.
func refuseBatchlessOverwrite(path string, fresh *experiments.ServeResult) {
	data, err := os.ReadFile(path)
	if err != nil {
		return // nothing committed at this path yet
	}
	var committed experiments.ServeResult
	if err := json.Unmarshal(data, &committed); err != nil {
		return // not a bench artefact; writeJSON will replace it knowingly
	}
	if committed.BatchSolvesPerSec > 0 && (fresh.BatchSolvesPerSec <= 0 || !fresh.BatchColumnsExact) {
		fmt.Fprintf(os.Stderr, "refusing to overwrite %s: the committed artefact carries a measured batched mix (%.2f solves/s, columns exact) and this run lost it (%.2f solves/s, columns_exact=%v) — fix the batched phase or pass -json to write elsewhere\n",
			path, committed.BatchSolvesPerSec, fresh.BatchSolvesPerSec, fresh.BatchColumnsExact)
		os.Exit(3)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
