// Command due-serve is the long-running solve-as-a-service server: it
// caches operators (CSR + factorized diagonal blocks + warm solver
// instances with prepared task graphs) and runs solve requests against
// them concurrently on one shared task pool, behind a bounded priority
// admission queue with per-request deadlines and per-tenant fault
// domains.
//
// Usage:
//
//	due-serve -addr :8080 -workers 8 -concurrent 4
//	due-serve -addr :8080 -preload thermal2:16384,qa8fm:8192
//
// API (JSON over HTTP):
//
//	POST /v1/matrices  {"key":"m1","gen":"thermal2","n":16384}
//	POST /v1/solve     {"matrix":"m1","solver":"cg","method":"afeir",
//	                    "precond":true,"priority":2,"due_mtbe_ns":5e6}
//	POST /v1/solve     {"matrix":"m1","method":"feir","batch":true}
//	GET  /v1/stats
//
// Requests with "batch":true that fit the batched envelope
// (unpreconditioned single-node CG, no injection) are coalesced: a
// dispatcher holds one open for -batch-window, pulling same-matrix
// companions from the queue up to -batch-width, then runs one multi-RHS
// solve that streams the operator once for the whole group.
//
// SIGINT/SIGTERM drain gracefully: admissions stop, queued and in-flight
// solves finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/matgen"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "shared task-pool size (0 = GOMAXPROCS)")
	concurrent := flag.Int("concurrent", 0, "concurrent solves (0 = default)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default)")
	timeout := flag.Duration("timeout", 0, "default per-request budget (0 = default)")
	cacheBytes := flag.Int64("cache-bytes", 0, "operator cache cap in bytes (0 = default)")
	batchWidth := flag.Int("batch-width", 0, "max requests coalesced into one batched solve (0 = default)")
	batchWindow := flag.Duration("batch-window", 0, "how long a dispatcher waits for batch companions (0 = default)")
	preload := flag.String("preload", "", "comma-separated gen:n matrices to cache at startup (key = gen)")
	flag.Parse()

	srv := serve.New(serve.Options{
		QueueDepth:  *queue,
		Concurrent:  *concurrent,
		Timeout:     *timeout,
		CacheBytes:  *cacheBytes,
		Workers:     *workers,
		BatchWidth:  *batchWidth,
		BatchWindow: *batchWindow,
	})
	if err := preloadMatrices(srv, *preload); err != nil {
		fmt.Fprintf(os.Stderr, "due-serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("due-serve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "due-serve: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("due-serve: %v, draining\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx) // stop accepting, finish in-flight handlers
	srv.Drain()               // finish queued solves
	fmt.Println("due-serve: drained")
}

func preloadMatrices(srv *serve.Server, spec string) error {
	if spec == "" {
		return nil
	}
	for _, item := range strings.Split(spec, ",") {
		gen, dim, ok := strings.Cut(item, ":")
		if !ok {
			return fmt.Errorf("bad -preload entry %q (want gen:n)", item)
		}
		n, err := strconv.Atoi(dim)
		if err != nil {
			return fmt.Errorf("bad -preload dimension in %q: %v", item, err)
		}
		a, err := matgen.PaperMatrix(gen, n)
		if err != nil {
			return err
		}
		srv.RegisterMatrix(gen, a, 0)
		fmt.Printf("due-serve: cached %s (n=%d nnz=%d)\n", gen, a.N, a.NNZ())
	}
	return nil
}
