// Command due-solve solves a linear system from a Matrix Market file (or a
// built-in generator) with one of the resilient solvers, optionally
// injecting DUEs at a chosen rate, and reports convergence, recovery
// statistics and the per-state worker-time breakdown (Table 3).
//
// Usage:
//
//	due-solve -matrix system.mtx -method afeir -rate 2
//	due-solve -gen thermal2 -n 20000 -method feir -precond -rate 5
//	due-solve -gen poisson3d -n 32768 -solver gmres -method afeir -rate 3 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/matgen"
	"repro/internal/pagemem"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

func main() {
	matrixPath := flag.String("matrix", "", "Matrix Market file (coordinate real)")
	gen := flag.String("gen", "", "built-in generator: one of the paper analogues, or poisson2d / poisson3d")
	n := flag.Int("n", 10000, "dimension for -gen workloads")
	method := flag.String("method", "afeir", "ideal | trivial | lossy | ckpt | feir | afeir")
	solverName := flag.String("solver", "cg", "cg | bicgstab | gmres")
	precond := flag.Bool("precond", false, "use the block-Jacobi preconditioner (cg only)")
	rate := flag.Float64("rate", 0, "expected DUEs per solver run (0 = no injection)")
	tol := flag.Float64("tol", 1e-10, "relative residual tolerance")
	workers := flag.Int("workers", 8, "task-pool size (all solvers)")
	seed := flag.Int64("seed", 1, "injection seed")
	flag.Parse()

	a, b, err := loadSystem(*matrixPath, *gen, *n)
	if err != nil {
		fatalf("%v", err)
	}
	m, err := parseMethod(*method)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := core.Config{
		Method:     m,
		Workers:    *workers,
		Tol:        *tol,
		UsePrecond: *precond,
	}
	fmt.Printf("system: n=%d nnz=%d, method=%s solver=%s precond=%v workers=%d\n",
		a.N, a.NNZ(), m, *solverName, *precond, *workers)

	run, err := buildSolver(*solverName, a, b, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	var in *inject.Injector
	if *rate > 0 {
		// Estimate the ideal time with a probe run of the same solver to
		// normalise the MTBE like the paper (§5.3).
		probeCfg := cfg
		probeCfg.Method = core.MethodIdeal
		probe, err := buildSolver(*solverName, a, b, probeCfg)
		if err != nil {
			fatalf("%v", err)
		}
		pres, err := probe.run()
		if err != nil {
			fatalf("probe: %v", err)
		}
		mtbe := time.Duration(pres.Elapsed.Seconds() / *rate * float64(time.Second))
		fmt.Printf("ideal time %v -> MTBE %v (rate %g)\n",
			pres.Elapsed.Round(time.Millisecond), mtbe.Round(time.Millisecond), *rate)
		in = inject.NewInjector(run.space, run.dynamic, mtbe, *seed)
		in.Start()
		defer in.Stop()
	}
	res, err := run.run()
	if in != nil {
		in.Stop()
	}
	report(res, err)
}

// solverRun adapts the three resilient solvers to one launch shape.
type solverRun struct {
	space   *pagemem.Space
	dynamic []*pagemem.Vector
	run     func() (core.Result, error)
}

func buildSolver(name string, a *sparse.CSR, b []float64, cfg core.Config) (*solverRun, error) {
	switch name {
	case "cg":
		cg, err := core.NewCG(a, b, cfg)
		if err != nil {
			return nil, err
		}
		return &solverRun{space: cg.Space(), dynamic: cg.DynamicVectors(), run: cg.Run}, nil
	case "bicgstab":
		sv, err := core.NewBiCGStab(a, b, cfg)
		if err != nil {
			return nil, err
		}
		return &solverRun{space: sv.Space(), dynamic: sv.DynamicVectors(), run: func() (core.Result, error) {
			res, _, err := sv.Run()
			return res, err
		}}, nil
	case "gmres":
		sv, err := core.NewGMRES(a, b, 30, cfg)
		if err != nil {
			return nil, err
		}
		return &solverRun{space: sv.Space(), dynamic: sv.DynamicVectors(), run: func() (core.Result, error) {
			res, _, err := sv.Run()
			return res, err
		}}, nil
	}
	return nil, fmt.Errorf("unknown solver %q", name)
}

func report(res core.Result, err error) {
	if err != nil {
		fatalf("solve: %v", err)
	}
	fmt.Printf("converged=%v iterations=%d elapsed=%v trueResidual=%.3e\n",
		res.Converged, res.Iterations, res.Elapsed.Round(time.Millisecond), res.RelResidual)
	s := res.Stats
	fmt.Printf("faults=%d recovered: forward=%d inverse=%d coupled=%d qRecomputed=%d precondPartial=%d\n",
		s.FaultsSeen, s.RecoveredForward, s.RecoveredInverse, s.RecoveredCoupled, s.RecomputedQ, s.PrecondPartialApplies)
	fmt.Printf("contributionsLost=%d unrecovered=%d lossyInterp=%d restarts=%d rollbacks=%d checkpoints=%d\n",
		s.ContributionsLost, s.Unrecovered, s.LossyInterpolations, s.Restarts, s.Rollbacks, s.CheckpointsWritten)
	if len(res.WorkerTimes) > 0 {
		var total taskrt.StateTimes
		fmt.Printf("worker state times (useful / runtime / idle):\n")
		for w, st := range res.WorkerTimes {
			fmt.Printf("  w%-2d %10v %10v %10v\n", w,
				st.Useful.Round(time.Microsecond), st.Runtime.Round(time.Microsecond), st.Idle.Round(time.Microsecond))
			total.Useful += st.Useful
			total.Runtime += st.Runtime
			total.Idle += st.Idle
		}
		if tt := total.Total(); tt > 0 {
			fmt.Printf("  sum %10v %10v %10v  (useful %.1f%%)\n",
				total.Useful.Round(time.Microsecond), total.Runtime.Round(time.Microsecond),
				total.Idle.Round(time.Microsecond), 100*total.Useful.Seconds()/tt.Seconds())
		}
	}
}

func loadSystem(path, gen string, n int) (*sparse.CSR, []float64, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		a, err := matgen.ReadMatrixMarket(f)
		if err != nil {
			return nil, nil, err
		}
		return a, matgen.Ones(a.N), nil
	}
	switch gen {
	case "poisson2d":
		side := 1
		for side*side < n {
			side++
		}
		a := matgen.Poisson2D(side, side)
		return a, matgen.Ones(a.N), nil
	case "poisson3d":
		side := 1
		for side*side*side < n {
			side++
		}
		a := matgen.Poisson3D27(side, side, side)
		return a, matgen.Ones(a.N), nil
	case "":
		return nil, nil, fmt.Errorf("provide -matrix or -gen (analogues: %s)", strings.Join(matgen.PaperMatrixNames, ", "))
	default:
		a, err := matgen.PaperMatrix(gen, n)
		if err != nil {
			return nil, nil, err
		}
		return a, matgen.Ones(a.N), nil
	}
}

func parseMethod(s string) (core.Method, error) {
	switch strings.ToLower(s) {
	case "ideal":
		return core.MethodIdeal, nil
	case "trivial":
		return core.MethodTrivial, nil
	case "lossy":
		return core.MethodLossy, nil
	case "ckpt", "checkpoint":
		return core.MethodCheckpoint, nil
	case "feir":
		return core.MethodFEIR, nil
	case "afeir":
		return core.MethodAFEIR, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
