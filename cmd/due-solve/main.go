// Command due-solve solves a linear system from a Matrix Market file (or a
// built-in generator) with one of the resilient solvers, optionally
// injecting DUEs at a chosen rate, and reports convergence and recovery
// statistics.
//
// Usage:
//
//	due-solve -matrix system.mtx -method afeir -rate 2
//	due-solve -gen thermal2 -n 20000 -method feir -precond -rate 5
//	due-solve -gen poisson3d -n 32768 -solver gmres
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

func main() {
	matrixPath := flag.String("matrix", "", "Matrix Market file (coordinate real)")
	gen := flag.String("gen", "", "built-in generator: one of the paper analogues, or poisson2d / poisson3d")
	n := flag.Int("n", 10000, "dimension for -gen workloads")
	method := flag.String("method", "afeir", "ideal | trivial | lossy | ckpt | feir | afeir")
	solverName := flag.String("solver", "cg", "cg | bicgstab | gmres")
	precond := flag.Bool("precond", false, "use the block-Jacobi preconditioner (cg only)")
	rate := flag.Float64("rate", 0, "expected DUEs per solver run (0 = no injection)")
	tol := flag.Float64("tol", 1e-10, "relative residual tolerance")
	workers := flag.Int("workers", 8, "task-pool size")
	seed := flag.Int64("seed", 1, "injection seed")
	flag.Parse()

	a, b, err := loadSystem(*matrixPath, *gen, *n)
	if err != nil {
		fatalf("%v", err)
	}
	m, err := parseMethod(*method)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := core.Config{
		Method:     m,
		Workers:    *workers,
		Tol:        *tol,
		UsePrecond: *precond,
	}
	fmt.Printf("system: n=%d nnz=%d, method=%s solver=%s precond=%v\n",
		a.N, a.NNZ(), m, *solverName, *precond)

	switch *solverName {
	case "cg":
		runCG(a, b, cfg, *rate, *seed)
	case "bicgstab":
		sv, err := core.NewBiCGStab(a, b, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		res, _, err := sv.Run()
		report(res, err)
	case "gmres":
		sv, err := core.NewGMRES(a, b, 30, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		res, _, err := sv.Run()
		report(res, err)
	default:
		fatalf("unknown solver %q", *solverName)
	}
}

func runCG(a *sparse.CSR, b []float64, cfg core.Config, rate float64, seed int64) {
	cg, err := core.NewCG(a, b, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	var in *inject.Injector
	if rate > 0 {
		// Estimate the ideal time with a short probe run to normalise the
		// MTBE like the paper (§5.3).
		probe, err := core.NewCG(a, b, core.Config{Method: core.MethodIdeal, Workers: cfg.Workers, Tol: cfg.Tol, UsePrecond: cfg.UsePrecond})
		if err != nil {
			fatalf("%v", err)
		}
		pres, err := probe.Run()
		if err != nil {
			fatalf("probe: %v", err)
		}
		mtbe := time.Duration(pres.Elapsed.Seconds() / rate * float64(time.Second))
		fmt.Printf("ideal time %v -> MTBE %v (rate %g)\n", pres.Elapsed.Round(time.Millisecond), mtbe.Round(time.Millisecond), rate)
		in = inject.NewInjector(cg.Space(), cg.DynamicVectors(), mtbe, seed)
		in.Start()
		defer in.Stop()
	}
	res, err := cg.Run()
	report(res, err)
}

func report(res core.Result, err error) {
	if err != nil {
		fatalf("solve: %v", err)
	}
	fmt.Printf("converged=%v iterations=%d elapsed=%v trueResidual=%.3e\n",
		res.Converged, res.Iterations, res.Elapsed.Round(time.Millisecond), res.RelResidual)
	s := res.Stats
	fmt.Printf("faults=%d recovered: forward=%d inverse=%d coupled=%d qRecomputed=%d precondPartial=%d\n",
		s.FaultsSeen, s.RecoveredForward, s.RecoveredInverse, s.RecoveredCoupled, s.RecomputedQ, s.PrecondPartialApplies)
	fmt.Printf("contributionsLost=%d unrecovered=%d lossyInterp=%d restarts=%d rollbacks=%d checkpoints=%d\n",
		s.ContributionsLost, s.Unrecovered, s.LossyInterpolations, s.Restarts, s.Rollbacks, s.CheckpointsWritten)
}

func loadSystem(path, gen string, n int) (*sparse.CSR, []float64, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		a, err := matgen.ReadMatrixMarket(f)
		if err != nil {
			return nil, nil, err
		}
		return a, matgen.Ones(a.N), nil
	}
	switch gen {
	case "poisson2d":
		side := 1
		for side*side < n {
			side++
		}
		a := matgen.Poisson2D(side, side)
		return a, matgen.Ones(a.N), nil
	case "poisson3d":
		side := 1
		for side*side*side < n {
			side++
		}
		a := matgen.Poisson3D27(side, side, side)
		return a, matgen.Ones(a.N), nil
	case "":
		return nil, nil, fmt.Errorf("provide -matrix or -gen (analogues: %s)", strings.Join(matgen.PaperMatrixNames, ", "))
	default:
		a, err := matgen.PaperMatrix(gen, n)
		if err != nil {
			return nil, nil, err
		}
		return a, matgen.Ones(a.N), nil
	}
}

func parseMethod(s string) (core.Method, error) {
	switch strings.ToLower(s) {
	case "ideal":
		return core.MethodIdeal, nil
	case "trivial":
		return core.MethodTrivial, nil
	case "lossy":
		return core.MethodLossy, nil
	case "ckpt", "checkpoint":
		return core.MethodCheckpoint, nil
	case "feir":
		return core.MethodFEIR, nil
	case "afeir":
		return core.MethodAFEIR, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
