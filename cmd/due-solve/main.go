// Command due-solve solves a linear system from a Matrix Market file (or a
// built-in generator) with one of the resilient solvers, optionally
// injecting DUEs at a chosen rate, and reports convergence, recovery
// statistics and the per-state worker-time breakdown (Table 3). With
// -ranks N the solve runs on the rank-sharded substrate (§3.4) and the
// report adds per-rank recovery counts.
//
// Usage:
//
//	due-solve -matrix system.mtx -method afeir -rate 2
//	due-solve -gen thermal2 -n 20000 -method feir -precond -rate 5
//	due-solve -gen poisson3d -n 32768 -solver gmres -method afeir -precond -rate 3 -workers 8
//	due-solve -gen poisson3d -n 32768 -solver bicgstab -method feir -precond -ranks 4 -rate 3
//	due-solve -gen poisson2d -n 4096 -method feir -abft -policy adaptive -rate 10 -sdc 0.3
//
// -precond selects the block-Jacobi preconditioned variant of every
// solver, single-node or distributed; a solver without a preconditioned
// variant is rejected by the registry instead of silently running
// unpreconditioned. -abft enables the checksum-carrying kernels (silent
// bit flips become detections and then ordinary page recoveries), -sdc
// makes the injector emit that fraction of its events as single-bit
// flips, and -policy adaptive puts the model-driven controller in charge
// of the method (FEIR ↔ AFEIR ↔ Lossy) and checkpoint interval; the
// report then includes the per-run decision log and SDC counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/matgen"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/sparse"
	"repro/internal/taskrt"
)

func main() {
	matrixPath := flag.String("matrix", "", "Matrix Market file (coordinate real)")
	gen := flag.String("gen", "", "built-in generator: one of the paper analogues, or poisson2d / poisson3d")
	n := flag.Int("n", 10000, "dimension for -gen workloads")
	method := flag.String("method", "afeir", "ideal | trivial | lossy | ckpt | feir | afeir")
	solverName := flag.String("solver", "cg", strings.Join(registry.Names(), " | "))
	precond := flag.Bool("precond", false, "use the block-Jacobi preconditioner (all solvers, single-node and -ranks)")
	ranks := flag.Int("ranks", 0, "run distributed across N ranks on the sharded substrate (0 = single-node)")
	basisK := flag.Int("basis-k", 0, "s-step basis size for -solver cacg (0 = 4): one global reduction per k iterations")
	rate := flag.Float64("rate", 0, "expected DUEs per solver run (0 = no injection)")
	sdc := flag.Float64("sdc", 0, "fraction of injected events that are silent single-bit flips instead of DUEs (0..1, needs -rate)")
	abft := flag.Bool("abft", false, "enable checksum (ABFT) silent-error coverage: detected flips become recoverable poisons (single-node cg, resilient methods)")
	policyName := flag.String("policy", "", "resilience policy: 'adaptive' switches FEIR/AFEIR/Lossy at iteration fixpoints from the observed error rate and the perf model; empty = static method")
	tol := flag.Float64("tol", 1e-10, "relative residual tolerance")
	workers := flag.Int("workers", 8, "task-pool size (all solvers)")
	seed := flag.Int64("seed", 1, "injection seed")
	flag.Parse()

	a, b, err := loadSystem(*matrixPath, *gen, *n)
	if err != nil {
		fatalf("%v", err)
	}
	m, err := parseMethod(*method)
	if err != nil {
		fatalf("%v", err)
	}
	var ctrl *policy.Controller
	switch *policyName {
	case "":
	case "adaptive":
		ctrl = policy.New(policy.Config{})
	default:
		fatalf("unknown -policy %q (only 'adaptive')", *policyName)
	}
	cfg := registry.Config{
		Config: core.Config{
			Method:     m,
			Workers:    *workers,
			Tol:        *tol,
			UsePrecond: *precond,
			ABFT:       *abft,
		},
		Ranks:  *ranks,
		BasisK: *basisK,
		// One process-wide pool: probe and main runs share it instead of
		// stacking two pools' workers onto the same cores.
		SharedPool: true,
	}
	if ctrl != nil {
		cfg.Policy = ctrl
	}
	fmt.Printf("system: n=%d nnz=%d, method=%s solver=%s precond=%v workers=%d ranks=%d abft=%v policy=%s\n",
		a.N, a.NNZ(), m, *solverName, *precond, *workers, *ranks, *abft, orStatic(*policyName))

	run, err := registry.New(*solverName, a, b, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	var in *inject.Injector
	if *rate > 0 {
		// Estimate the ideal time with a probe run of the same solver to
		// normalise the MTBE like the paper (§5.3).
		probeCfg := cfg
		probeCfg.Method = core.MethodIdeal
		// The probe must not consume the adaptive controller's state (or
		// pay the checksum folds): it only measures the ideal time.
		probeCfg.Policy = nil
		probeCfg.ABFT = false
		probe, err := registry.New(*solverName, a, b, probeCfg)
		if err != nil {
			fatalf("%v", err)
		}
		pres, err := probe.Run()
		if err != nil {
			fatalf("probe: %v", err)
		}
		mtbe := time.Duration(pres.Elapsed.Seconds() / *rate * float64(time.Second))
		fmt.Printf("ideal time %v -> MTBE %v (rate %g)\n",
			pres.Elapsed.Round(time.Millisecond), mtbe.Round(time.Millisecond), *rate)
		// All fault domains share one page layout, so a single injector
		// drawing uniformly over every protected (vector, page) pair
		// covers single-node and distributed runs alike.
		in = inject.NewInjector(run.Spaces[0], run.Dynamic, mtbe, *seed)
		in.SDCFraction = *sdc
		in.Start()
		defer in.Stop()
	}
	res, err := run.Run()
	if in != nil {
		in.Stop()
	}
	report(res, err)
	if ctrl != nil {
		reportPolicy(ctrl)
	}
	if run.RankStats != nil {
		reportRanks(run.RankStats())
	}
}

// reportPolicy prints the adaptive controller's per-run decision log —
// every method switch and checkpoint-interval retune with the rate
// estimate that motivated it.
func reportPolicy(ctrl *policy.Controller) {
	decs := ctrl.Decisions()
	fmt.Printf("policy: %d decisions, final rate estimate %.4f events/iter\n", len(decs), ctrl.Rate())
	for _, d := range decs {
		fmt.Printf("  %s\n", d)
	}
}

func orStatic(s string) string {
	if s == "" {
		return "static"
	}
	return s
}

func report(res core.Result, err error) {
	if err != nil {
		fatalf("solve: %v", err)
	}
	fmt.Printf("converged=%v iterations=%d elapsed=%v trueResidual=%.3e\n",
		res.Converged, res.Iterations, res.Elapsed.Round(time.Millisecond), res.RelResidual)
	s := res.Stats
	fmt.Printf("faults=%d recovered: forward=%d inverse=%d coupled=%d qRecomputed=%d precondPartial=%d\n",
		s.FaultsSeen, s.RecoveredForward, s.RecoveredInverse, s.RecoveredCoupled, s.RecomputedQ, s.PrecondPartialApplies)
	fmt.Printf("contributionsLost=%d unrecovered=%d lossyInterp=%d restarts=%d rollbacks=%d checkpoints=%d\n",
		s.ContributionsLost, s.Unrecovered, s.LossyInterpolations, s.Restarts, s.Rollbacks, s.CheckpointsWritten)
	if s.SDCInjected > 0 || s.SDCDetected > 0 || s.PolicySwitches > 0 {
		fmt.Printf("sdc: injected=%d detected=%d policySwitches=%d\n",
			s.SDCInjected, s.SDCDetected, s.PolicySwitches)
	}
	if len(res.WorkerTimes) > 0 {
		var total taskrt.StateTimes
		fmt.Printf("worker state times (useful / runtime / idle):\n")
		for w, st := range res.WorkerTimes {
			fmt.Printf("  w%-2d %10v %10v %10v\n", w,
				st.Useful.Round(time.Microsecond), st.Runtime.Round(time.Microsecond), st.Idle.Round(time.Microsecond))
			total.Useful += st.Useful
			total.Runtime += st.Runtime
			total.Idle += st.Idle
		}
		if tt := total.Total(); tt > 0 {
			fmt.Printf("  sum %10v %10v %10v  (useful %.1f%%)\n",
				total.Useful.Round(time.Microsecond), total.Runtime.Round(time.Microsecond),
				total.Idle.Round(time.Microsecond), 100*total.Useful.Seconds()/tt.Seconds())
		}
	}
}

// reportRanks prints the per-rank recovery counters of a distributed run
// — the rank-local blast radius accounting of §3.4.
func reportRanks(rs []core.Stats) {
	fmt.Printf("per-rank recovery (faults / forward / inverse / unrecovered):\n")
	for i, s := range rs {
		fmt.Printf("  rank%-2d %6d %8d %8d %12d\n",
			i, s.FaultsSeen, s.RecoveredForward, s.RecoveredInverse, s.Unrecovered)
	}
}

func loadSystem(path, gen string, n int) (*sparse.CSR, []float64, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		a, err := matgen.ReadMatrixMarket(f)
		if err != nil {
			return nil, nil, err
		}
		return a, matgen.Ones(a.N), nil
	}
	switch gen {
	case "poisson2d":
		side := 1
		for side*side < n {
			side++
		}
		a := matgen.Poisson2D(side, side)
		return a, matgen.Ones(a.N), nil
	case "poisson3d":
		side := 1
		for side*side*side < n {
			side++
		}
		a := matgen.Poisson3D27(side, side, side)
		return a, matgen.Ones(a.N), nil
	case "":
		return nil, nil, fmt.Errorf("provide -matrix or -gen (analogues: %s)", strings.Join(matgen.PaperMatrixNames, ", "))
	default:
		a, err := matgen.PaperMatrix(gen, n)
		if err != nil {
			return nil, nil, err
		}
		return a, matgen.Ones(a.N), nil
	}
}

func parseMethod(s string) (core.Method, error) {
	switch strings.ToLower(s) {
	case "ideal":
		return core.MethodIdeal, nil
	case "trivial":
		return core.MethodTrivial, nil
	case "lossy":
		return core.MethodLossy, nil
	case "ckpt", "checkpoint":
		return core.MethodCheckpoint, nil
	case "feir":
		return core.MethodFEIR, nil
	case "afeir":
		return core.MethodAFEIR, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
